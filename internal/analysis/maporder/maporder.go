// Package maporder flags map iteration whose nondeterministic order can
// leak into the simulation: calls into the sim/trace engines from inside a
// range-over-map body, and slices accumulated in map order that the
// function never sorts.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"xssd/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: `forbid map-iteration order from feeding event scheduling

Go randomizes map iteration order per run. A range over a map whose body
schedules events (any call into xssd/internal/sim or xssd/internal/trace)
makes the event sequence — and therefore the whole run — irreproducible.
Likewise a slice appended to in map order and never sorted carries the
nondeterminism to whatever consumes it. Iterate sorted keys instead.`,
	Run: run,
}

// taintedPkgs are the packages whose call graph is event-ordering
// sensitive: calling into them in map order perturbs the run.
var taintedPkgs = map[string]bool{
	"xssd/internal/sim":   true,
	"xssd/internal/trace": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc examines the map-range statements directly inside body (not
// those of nested function literals — ast.Inspect in run visits every
// literal separately).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	walkShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMap(pass, rng.X) {
			return
		}
		checkMapRange(pass, body, rng)
	})
}

// walkShallow visits every node under root except the bodies of nested
// function literals (they are checked as functions in their own right).
func walkShallow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func isMap(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.Callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && taintedPkgs[fn.Pkg().Path()] {
				pass.Reportf(n.Pos(), "call to %s.%s inside map iteration: event order becomes map-iteration order, which is nondeterministic; iterate sorted keys", fn.Pkg().Name(), fn.Name())
			}
		case *ast.AssignStmt:
			checkAppend(pass, fnBody, rng, n)
		}
		return true
	})
}

// checkAppend reports `dst = append(dst, ...)` inside a map range when dst
// is declared outside the range and the enclosing function never passes it
// to a sort call: dst then holds elements in map-iteration order.
func checkAppend(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue // something shadowing the built-in append
		}
		obj := rootObj(pass, as.Lhs[i])
		if obj == nil || withinNode(rng, obj.Pos()) {
			continue // loop-local accumulator: ordering scoped to the body
		}
		if sortedInFunc(pass, fnBody, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "%s accumulates elements in map-iteration order and is never sorted in this function; sort it (or iterate sorted keys) before use", obj.Name())
	}
}

// rootObj resolves the variable (or field) an assignable expression
// ultimately denotes.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.IndexExpr:
		return rootObj(pass, e.X)
	case *ast.StarExpr:
		return rootObj(pass, e.X)
	}
	return nil
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedInFunc reports whether body contains a sort/slices sorting call
// that mentions obj in one of its arguments.
func sortedInFunc(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if a := rootObj(pass, unwrapArg(arg)); a == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func unwrapArg(e ast.Expr) ast.Expr {
	if u, ok := analysis.Unparen(e).(*ast.UnaryExpr); ok {
		return u.X
	}
	return e
}
