package bufownership_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/bufownership"
)

func TestBufOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", bufownership.Analyzer, "a")
}
