// Package bufownership enforces the buffer-pool ownership contracts of
// DESIGN.md §9: pooled buffers must not be used after they return to
// their pool, must not be retained outside annotated retention points,
// and aliases into pooled storage must not be forwarded to deferred
// callbacks or held across a yield without a private copy.
package bufownership

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xssd/internal/analysis"
)

// Analyzer is the bufownership check.
var Analyzer = &analysis.Analyzer{
	Name: "bufownership",
	Doc: `enforce pooled-buffer ownership (DESIGN.md §9)

The zero-alloc fast paths recycle payload buffers through per-module free
lists. That only stays correct under a strict ownership protocol, which
this analyzer checks from //xssd:pool annotations:

  //xssd:pool get     on functions handing out a pooled object
  //xssd:pool put     on free-list fields and release functions
  //xssd:pool retain  on sanctioned long-lived retention fields
  //xssd:pool alias   on functions returning views into pooled storage

Rules: (1) a pooled value must not be used after it was returned to the
pool; (2) a pooled or borrowed value must not be stored into a field that
is not an annotated retention point, nor into a map; (3) a pooled,
borrowed, or aliased value captured by an After/At timer callback needs a
private copy — the timer can fire after the pool reclaims the buffer;
(4) an alias into pooled storage must not be used across a blocking call
— the pool may compact or recycle under the yield. Borrowed parameters
(pcie.Target.MemWrite, wal.Sink.Write, ntb window writes) are tracked
like pooled values for rules 2 and 3. The analysis is per-function and
textual in statement order; loop back edges are not modeled.`,
	Run: run,
}

// taint classes.
const (
	owned    = "pooled"
	aliased  = "aliased"
	borrowed = "borrowed"
)

type taintInfo struct {
	class  string
	defPos token.Pos
}

// annots is the package's //xssd:pool annotation sets.
type annots struct {
	getFuncs   map[types.Object]bool
	aliasFuncs map[types.Object]bool
	putFuncs   map[types.Object]bool
	putFields  map[types.Object]bool
	retFields  map[types.Object]bool
}

func run(pass *analysis.Pass) error {
	an := collect(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &state{
				pass:   pass,
				an:     an,
				taint:  map[types.Object]*taintInfo{},
				putPos: map[types.Object]token.Pos{},
				done:   map[types.Object]bool{},
			}
			s.seedBorrowedParams(fd)
			s.stmt(fd.Body)
		}
	}
	return nil
}

// collect gathers the package's pool annotations from doc comments.
func collect(pass *analysis.Pass) *annots {
	an := &annots{
		getFuncs:   map[types.Object]bool{},
		aliasFuncs: map[types.Object]bool{},
		putFuncs:   map[types.Object]bool{},
		putFields:  map[types.Object]bool{},
		retFields:  map[types.Object]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				dir, ok := analysis.FindDirective(d.Doc, "pool")
				if !ok || len(dir.Args) == 0 {
					continue
				}
				obj := pass.TypesInfo.Defs[d.Name]
				switch dir.Args[0] {
				case "get":
					an.getFuncs[obj] = true
				case "alias":
					an.aliasFuncs[obj] = true
				case "put":
					an.putFuncs[obj] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						dir, ok := analysis.FindDirective(field.Doc, "pool")
						if !ok {
							dir, ok = analysis.FindDirective(field.Comment, "pool")
						}
						if !ok || len(dir.Args) == 0 {
							continue
						}
						for _, name := range field.Names {
							obj := pass.TypesInfo.Defs[name]
							switch dir.Args[0] {
							case "put":
								an.putFields[obj] = true
							case "retain":
								an.retFields[obj] = true
							}
						}
					}
				}
			}
		}
	}
	return an
}

// state is the per-function linear analysis.
type state struct {
	pass   *analysis.Pass
	an     *annots
	taint  map[types.Object]*taintInfo
	putPos map[types.Object]token.Pos
	blocks []token.Pos // end offsets of blocking calls, in source order
	done   map[types.Object]bool
}

// seedBorrowedParams marks []byte parameters whose ownership stays with
// the caller per the repo's structural contracts: pcie.Target.MemWrite
// (off int64, data []byte), wal.Sink.Write (p *sim.Proc, data []byte),
// and the ntb window Write (off int64, data []byte, done func()).
func (s *state) seedBorrowedParams(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	var params []*ast.Ident
	var ptypes []types.Type
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			obj := s.pass.TypesInfo.Defs[n]
			if obj == nil {
				return
			}
			params = append(params, n)
			ptypes = append(ptypes, obj.Type())
		}
	}
	match := func(i int, want func(types.Type) bool) bool {
		return i < len(ptypes) && want(ptypes[i])
	}
	isInt64 := func(t types.Type) bool { b, ok := t.(*types.Basic); return ok && b.Kind() == types.Int64 }
	isBytes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().(*types.Basic)
		return ok && b.Kind() == types.Uint8
	}
	isFunc := func(t types.Type) bool { _, ok := t.Underlying().(*types.Signature); return ok }
	var borrowedIdx = -1
	switch fd.Name.Name {
	case "MemWrite":
		if len(params) == 2 && match(0, isInt64) && match(1, isBytes) {
			borrowedIdx = 1
		}
	case "Write":
		if len(params) == 2 && match(0, isSimProc) && match(1, isBytes) {
			borrowedIdx = 1
		}
		if len(params) == 3 && match(0, isInt64) && match(1, isBytes) && match(2, isFunc) {
			borrowedIdx = 1
		}
	}
	if borrowedIdx >= 0 {
		obj := s.pass.TypesInfo.Defs[params[borrowedIdx]]
		s.taint[obj] = &taintInfo{class: borrowed, defPos: params[borrowedIdx].Pos()}
	}
}

func isSimProc(t types.Type) bool { return isSimType(t, "Proc") }
func isSimEnv(t types.Type) bool  { return isSimType(t, "Env") }

func isSimType(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Name() != name || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sim" || strings.HasSuffix(path, "/sim")
}

// ---- statement walk ---------------------------------------------------

func (s *state) stmt(n ast.Stmt) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, st := range n.List {
			s.stmt(st)
		}
	case *ast.IfStmt:
		if n.Init != nil {
			s.stmt(n.Init)
		}
		s.expr(n.Cond)
		if terminates(n.Body) {
			// The branch abandons the function (return/break/continue):
			// puts inside it must not poison the fallthrough path.
			saved := map[types.Object]token.Pos{}
			for k, v := range s.putPos {
				saved[k] = v
			}
			s.stmt(n.Body)
			s.putPos = saved
		} else {
			s.stmt(n.Body)
		}
		if n.Else != nil {
			s.stmt(n.Else)
		}
	case *ast.ForStmt:
		if n.Init != nil {
			s.stmt(n.Init)
		}
		if n.Cond != nil {
			s.expr(n.Cond)
		}
		s.stmt(n.Body)
		if n.Post != nil {
			s.stmt(n.Post)
		}
	case *ast.RangeStmt:
		s.expr(n.X)
		s.assignRange(n)
		s.stmt(n.Body)
	case *ast.SwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init)
		}
		if n.Tag != nil {
			s.expr(n.Tag)
		}
		s.stmt(n.Body)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			s.stmt(n.Init)
		}
		s.stmt(n.Assign)
		s.stmt(n.Body)
	case *ast.CaseClause:
		for _, e := range n.List {
			s.expr(e)
		}
		for _, st := range n.Body {
			s.stmt(st)
		}
	case *ast.SelectStmt:
		s.stmt(n.Body)
	case *ast.CommClause:
		if n.Comm != nil {
			s.stmt(n.Comm)
		}
		for _, st := range n.Body {
			s.stmt(st)
		}
	case *ast.ExprStmt:
		s.expr(n.X)
	case *ast.SendStmt:
		s.expr(n.Chan)
		s.expr(n.Value)
	case *ast.IncDecStmt:
		s.expr(n.X)
	case *ast.AssignStmt:
		s.assign(n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.expr(e)
		}
	case *ast.DeferStmt:
		s.expr(n.Call)
	case *ast.GoStmt:
		s.expr(n.Call)
	case *ast.LabeledStmt:
		s.stmt(n.Stmt)
	}
}

func (s *state) assignRange(n *ast.RangeStmt) {
	// `for i, v := range tainted` taints v like an alias of the storage.
	if id, ok := n.X.(*ast.Ident); ok {
		if ti := s.taintOf(id); ti != nil && n.Value != nil {
			if vid, ok := n.Value.(*ast.Ident); ok {
				if obj := s.pass.TypesInfo.Defs[vid]; obj != nil {
					s.taint[obj] = &taintInfo{class: ti.class, defPos: vid.Pos()}
				}
			}
		}
	}
}

// assign handles taint introduction, puts, and retention checks.
func (s *state) assign(n *ast.AssignStmt) {
	// Evaluate RHS uses first (reads happen before the store).
	oneToOne := len(n.Lhs) == len(n.Rhs)
	for i, rhs := range n.Rhs {
		var target ast.Expr
		if oneToOne {
			target = n.Lhs[i]
		}
		s.assignOne(target, rhs, n.Tok == token.DEFINE)
	}
	// LHS index/selector bases are reads too.
	for _, lhs := range n.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			s.expr(l.X)
			s.expr(l.Index)
		case *ast.StarExpr:
			s.expr(l.X)
		case *ast.SelectorExpr:
			s.expr(l.X)
		}
	}
}

// assignOne processes one target = value pair.
func (s *state) assignOne(target, rhs ast.Expr, define bool) {
	newTaint := s.taintFromRHS(rhs)

	// A put via append-to-free-list: x.putField = append(x.putField, V...)
	if call, ok := analysis.Unparen(rhs).(*ast.CallExpr); ok && s.isAppend(call) && len(call.Args) > 0 {
		if fieldObj := s.fieldOf(call.Args[0]); fieldObj != nil && s.an.putFields[fieldObj] {
			for _, arg := range call.Args[1:] {
				if id, ok := analysis.Unparen(arg).(*ast.Ident); ok {
					if ti := s.taintOf(id); ti != nil && ti.class != borrowed {
						s.putPos[s.pass.TypesInfo.Uses[id]] = call.End()
					}
				}
			}
			s.expr(rhs)
			return
		}
	}

	// Retention check on the target.
	s.checkRetention(target, rhs)

	// Taint propagation into plain local targets.
	if id, ok := analysis.Unparen(target).(*ast.Ident); ok && id.Name != "_" {
		var obj types.Object
		if define {
			obj = s.pass.TypesInfo.Defs[id]
		} else {
			obj = s.pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			if newTaint != nil {
				if old := s.taint[obj]; old != nil && !define {
					// Reassignment keeps the original definition point:
					// `tail = tail[n:]` does not renew an alias's lease.
					newTaint.defPos = old.defPos
				}
				s.taint[obj] = newTaint
			} else if !define {
				// Overwritten with a clean value.
				if _, tracked := s.taint[obj]; tracked && !s.rhsMentions(rhs, obj) {
					delete(s.taint, obj)
				}
			}
		}
	}
	s.expr(rhs)
}

// taintFromRHS classifies the value produced by rhs, or nil when clean.
func (s *state) taintFromRHS(rhs ast.Expr) *taintInfo {
	rhs = analysis.Unparen(rhs)
	switch e := rhs.(type) {
	case *ast.CallExpr:
		if s.isPrivateCopy(e) {
			return nil
		}
		if fn := analysis.Callee(s.pass.TypesInfo, e); fn != nil {
			if s.an.getFuncs[fn] {
				return &taintInfo{class: owned, defPos: rhs.Pos()}
			}
			if s.an.aliasFuncs[fn] {
				return &taintInfo{class: aliased, defPos: rhs.Pos()}
			}
		}
	case *ast.IndexExpr:
		if f := s.fieldOf(e.X); f != nil && (s.an.putFields[f] || s.an.retFields[f]) {
			return &taintInfo{class: aliased, defPos: rhs.Pos()}
		}
		if id, ok := analysis.Unparen(e.X).(*ast.Ident); ok {
			if ti := s.taintOf(id); ti != nil {
				return &taintInfo{class: aliased, defPos: rhs.Pos()}
			}
		}
	case *ast.SliceExpr:
		if f := s.fieldOf(e.X); f != nil && (s.an.putFields[f] || s.an.retFields[f]) {
			return &taintInfo{class: aliased, defPos: rhs.Pos()}
		}
		if id, ok := analysis.Unparen(e.X).(*ast.Ident); ok {
			if ti := s.taintOf(id); ti != nil {
				return &taintInfo{class: ti.class, defPos: rhs.Pos()}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if inner, ok := analysis.Unparen(e.X).(*ast.IndexExpr); ok {
				if f := s.fieldOf(inner.X); f != nil && (s.an.putFields[f] || s.an.retFields[f]) {
					return &taintInfo{class: aliased, defPos: rhs.Pos()}
				}
				if id, ok := analysis.Unparen(inner.X).(*ast.Ident); ok && s.taintOf(id) != nil {
					return &taintInfo{class: aliased, defPos: rhs.Pos()}
				}
			}
		}
	case *ast.Ident:
		if ti := s.taintOf(e); ti != nil {
			return &taintInfo{class: ti.class, defPos: ti.defPos}
		}
	}
	return nil
}

// isPrivateCopy recognizes append(T(nil), x...) — the sanctioned
// private-copy idiom producing a clean, owned buffer.
func (s *state) isPrivateCopy(call *ast.CallExpr) bool {
	if !s.isAppend(call) || !call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	dst := analysis.Unparen(call.Args[0])
	// The destination is T(nil): IsNil must be asked of the conversion's
	// operand — the conversion expression itself is an ordinary value.
	if conv, ok := dst.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if t, ok := s.pass.TypesInfo.Types[conv.Fun]; ok && t.IsType() {
			dst = analysis.Unparen(conv.Args[0])
		}
	}
	tv, ok := s.pass.TypesInfo.Types[dst]
	return ok && tv.IsNil()
}

// checkRetention reports rule 2: a tainted value stored into a field
// that is not an annotated retention point, or into a map.
func (s *state) checkRetention(target, rhs ast.Expr) {
	if target == nil {
		return
	}
	tainted := s.taintedWholeValues(rhs)
	if len(tainted) == 0 {
		return
	}
	switch t := analysis.Unparen(target).(type) {
	case *ast.SelectorExpr:
		f := s.fieldObjOf(t)
		if f == nil {
			return // package selector or method
		}
		if s.an.putFields[f] || s.an.retFields[f] {
			return
		}
		s.pass.Reportf(target.Pos(), "%s buffer %s retained in field %s, which is not marked //xssd:pool retain; take a private copy (DESIGN.md §9)",
			tainted[0].class, tainted[0].name, f.Name())
	case *ast.IndexExpr:
		if tv, ok := s.pass.TypesInfo.Types[t.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				s.pass.Reportf(target.Pos(), "%s buffer %s retained in a map; take a private copy (DESIGN.md §9)",
					tainted[0].class, tainted[0].name)
				return
			}
		}
		if f := s.fieldObjHolding(t.X); f != nil && !s.an.putFields[f] && !s.an.retFields[f] {
			s.pass.Reportf(target.Pos(), "%s buffer %s retained in field %s, which is not marked //xssd:pool retain; take a private copy (DESIGN.md §9)",
				tainted[0].class, tainted[0].name, f.Name())
		}
	}
}

type taintedRef struct {
	name  string
	class string
}

// taintedWholeValues finds tainted identifiers stored wholesale by rhs:
// the bare identifier, identifiers inside composite literals, and
// identifiers appended as elements. Spread-appends of byte slices copy
// the bytes and are clean; values passed to other calls are arguments,
// not retention.
func (s *state) taintedWholeValues(rhs ast.Expr) []taintedRef {
	var out []taintedRef
	var scan func(e ast.Expr, retaining bool)
	scan = func(e ast.Expr, retaining bool) {
		switch e := analysis.Unparen(e).(type) {
		case *ast.Ident:
			if !retaining {
				return
			}
			if ti := s.taintOf(e); ti != nil {
				out = append(out, taintedRef{name: e.Name, class: ti.class})
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					scan(kv.Value, retaining)
				} else {
					scan(el, retaining)
				}
			}
		case *ast.CallExpr:
			if s.isAppend(e) {
				if e.Ellipsis.IsValid() && s.byteSpread(e) {
					return // spread of bytes: copies, clean
				}
				for _, arg := range e.Args[1:] {
					scan(arg, retaining)
				}
			}
		case *ast.UnaryExpr:
			scan(e.X, retaining)
		}
	}
	scan(rhs, true)
	return out
}

// byteSpread reports whether append's spread argument is a byte slice.
func (s *state) byteSpread(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	tv, ok := s.pass.TypesInfo.Types[call.Args[len(call.Args)-1]]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// ---- expression walk --------------------------------------------------

func (s *state) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident:
		s.use(e)
	case *ast.ParenExpr:
		s.expr(e.X)
	case *ast.SelectorExpr:
		s.expr(e.X)
	case *ast.IndexExpr:
		s.expr(e.X)
		s.expr(e.Index)
	case *ast.SliceExpr:
		s.expr(e.X)
		s.expr(e.Low)
		s.expr(e.High)
		s.expr(e.Max)
	case *ast.StarExpr:
		s.expr(e.X)
	case *ast.UnaryExpr:
		s.expr(e.X)
	case *ast.BinaryExpr:
		s.expr(e.X)
		s.expr(e.Y)
	case *ast.KeyValueExpr:
		s.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s.expr(el)
		}
	case *ast.TypeAssertExpr:
		s.expr(e.X)
	case *ast.CallExpr:
		s.call(e)
	case *ast.FuncLit:
		// A closure not handed to After/At (worker bodies passed to
		// Env.Go, completion callbacks): ownership analysis continues
		// inside with a fresh blocking horizon — the body runs in its own
		// context.
		saved := s.blocks
		s.blocks = nil
		s.stmt(e.Body)
		s.blocks = saved
	}
}

// use applies rules 1 and 4 to a read of a tainted identifier.
func (s *state) use(id *ast.Ident) {
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	ti := s.taint[obj]
	if ti == nil || s.done[obj] {
		return
	}
	if put, ok := s.putPos[obj]; ok && id.Pos() > put {
		s.pass.Reportf(id.Pos(), "pooled buffer %s used after it was returned to the pool", id.Name)
		s.done[obj] = true
		return
	}
	if ti.class == aliased {
		for _, b := range s.blocks {
			if b > ti.defPos && b < id.Pos() {
				s.pass.Reportf(id.Pos(), "alias %s into pooled storage is used across a blocking call; the pool may compact or recycle it during the yield — take a private copy (DESIGN.md §9)", id.Name)
				s.done[obj] = true
				return
			}
		}
	}
}

func (s *state) call(call *ast.CallExpr) {
	fn := analysis.Callee(s.pass.TypesInfo, call)

	// Rule 3: tainted values captured by After/At timer callbacks.
	if fn != nil && (fn.Name() == "After" || fn.Name() == "At") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isSimEnv(sig.Recv().Type()) {
			for _, arg := range call.Args {
				lit, ok := analysis.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				s.checkTimerCapture(lit)
			}
		}
	}

	// Put functions: their tainted arguments die here.
	if fn != nil && s.an.putFuncs[fn] {
		for _, arg := range call.Args {
			if id, ok := analysis.Unparen(arg).(*ast.Ident); ok {
				if obj := s.pass.TypesInfo.Uses[id]; obj != nil && s.taint[obj] != nil {
					s.putPos[obj] = call.End()
				}
			}
		}
	}

	for _, arg := range call.Args {
		s.expr(arg)
	}
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		s.expr(sel.X)
	}

	// Record the blocking horizon after the call's own arguments were
	// evaluated: passing a value INTO a blocking call is the call's
	// business; using it after the call returns is rule 4.
	if s.isBlocking(call, fn) {
		s.blocks = append(s.blocks, call.End())
	}
}

// checkTimerCapture reports rule 3 for one timer callback literal.
func (s *state) checkTimerCapture(lit *ast.FuncLit) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := s.pass.TypesInfo.Uses[id]
		if obj == nil || s.taint[obj] == nil {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		s.pass.Reportf(lit.Pos(), "%s buffer %s captured by a deferred timer callback; the timer can fire after the pool reclaims it — take a private copy (DESIGN.md §9)", s.taint[obj].class, id.Name)
		reported = true
		return false
	})
}

// isBlocking reports whether the call can yield the simulated process:
// it receives a *sim.Proc argument or is a method on *sim.Proc.
func (s *state) isBlocking(call *ast.CallExpr, fn *types.Func) bool {
	for _, arg := range call.Args {
		if tv, ok := s.pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isSimProc(tv.Type) {
			return true
		}
	}
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isSimProc(sig.Recv().Type()) {
			return true
		}
	}
	return false
}

// terminates reports whether a block's last statement leaves the
// enclosing flow (return, branch, or panic-like bare call is not
// modeled — only explicit control transfers).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// ---- small helpers ----------------------------------------------------

func (s *state) isAppend(call *ast.CallExpr) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	return ok && s.pass.TypesInfo.Uses[id] == types.Universe.Lookup("append")
}

func (s *state) taintOf(id *ast.Ident) *taintInfo {
	obj := s.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = s.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	return s.taint[obj]
}

// fieldOf resolves expr to an annotated-field object when expr is a
// plain selector like x.field (possibly through pointers).
func (s *state) fieldOf(e ast.Expr) types.Object {
	sel, ok := analysis.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return s.fieldObjOf(sel)
}

func (s *state) fieldObjOf(sel *ast.SelectorExpr) types.Object {
	if selInfo, ok := s.pass.TypesInfo.Selections[sel]; ok {
		if v, ok := selInfo.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	return nil
}

// fieldObjHolding resolves the field behind an index target like
// x.field[i].
func (s *state) fieldObjHolding(e ast.Expr) types.Object {
	return s.fieldOf(e)
}

// rhsMentions reports whether obj appears anywhere in e.
func (s *state) rhsMentions(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && s.pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
