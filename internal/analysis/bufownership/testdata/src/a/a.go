// Package a exercises the bufownership analyzer: pooled buffers used
// after their put, retained outside annotated fields, captured by timer
// callbacks, or aliased across a yield are reported; annotated retention
// points, private copies, and pre-put use are not.
package a

import (
	"time"

	"xssd/internal/sim"
)

type module struct {
	env *sim.Env

	//xssd:pool retain
	pending [][]byte
	//xssd:pool put
	free [][]byte

	stash  [][]byte // not an annotated retention point
	byName map[string][]byte
}

// getBuf hands out a pooled buffer.
//
//xssd:pool get
func (m *module) getBuf(n int) []byte {
	if len(m.free) == 0 {
		return make([]byte, n)
	}
	b := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return b[:n]
}

// putBuf recycles a pooled buffer.
//
//xssd:pool put
func (m *module) putBuf(b []byte) { m.free = append(m.free, b) }

// oldest returns a view into pooled storage without transferring
// ownership.
//
//xssd:pool alias
func (m *module) oldest() []byte { return m.pending[0] }

// Rule 1: the lease ends at the put.
func (m *module) useAfterPut() byte {
	b := m.getBuf(8)
	b[0] = 1
	m.putBuf(b)
	return b[0] // want "pooled buffer b used after it was returned to the pool"
}

// Rule 2: only annotated fields may keep a pooled buffer.
func (m *module) retainInPlainField() {
	b := m.getBuf(8)
	m.stash = append(m.stash, b) // want "pooled buffer b retained in field stash"
}

func (m *module) retainInMap(key string) {
	b := m.getBuf(8)
	m.byName[key] = b // want "pooled buffer b retained in a map"
}

// Rule 3: a timer callback outlives the lease.
func (m *module) timerCapture() {
	b := m.getBuf(8)
	m.env.After(time.Millisecond, func() { // want "pooled buffer b captured by a deferred timer callback"
		b[0] = 1
	})
}

// Rule 4: an alias into pooled storage dies at the first yield.
func (m *module) aliasAcrossYield(p *sim.Proc) byte {
	head := m.pending[0]
	p.Sleep(time.Microsecond)
	return head[0] // want "alias head into pooled storage is used across a blocking call"
}

func (m *module) aliasFuncAcrossYield(p *sim.Proc) byte {
	head := m.oldest()
	p.Sleep(time.Microsecond)
	return head[0] // want "alias head into pooled storage is used across a blocking call"
}

// Borrowed structural contract: MemWrite may read data synchronously but
// not keep it.
func (m *module) MemWrite(off int64, data []byte) {
	m.stash = append(m.stash, data) // want "borrowed buffer data retained in field stash"
}

// retainAnnotated parks pooled buffers in the sanctioned retention
// field; no report.
func (m *module) retainAnnotated() {
	b := m.getBuf(8)
	m.pending = append(m.pending, b)
}

// privateCopy is the DESIGN.md §9 idiom: the copy is owned by nobody
// but this function and survives the yield; no report.
func (m *module) privateCopy(p *sim.Proc) byte {
	head := m.pending[0]
	tail := append([]byte(nil), head...)
	p.Sleep(time.Microsecond)
	return tail[0]
}

// useBeforePut touches the buffer only while it is leased; no report.
func (m *module) useBeforePut() byte {
	b := m.getBuf(8)
	v := b[0]
	m.putBuf(b)
	return v
}

// byteSpread copies the bytes out; spreading is not retention.
func (m *module) byteSpread(out []byte) []byte {
	b := m.getBuf(8)
	out = append(out, b...)
	m.putBuf(b)
	return out
}

// copyBorrowed is the sanctioned way for a MemWrite-shaped function to
// keep the payload; no report.
func (m *module) memWriteCopy(off int64, data []byte) {
	buf := m.getBuf(len(data))
	copy(buf, data)
	m.pending = append(m.pending, buf)
}
