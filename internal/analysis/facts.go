package analysis

// Facts is a monotone cross-package note store, the minimal stand-in for
// the x/tools facts mechanism: an analyzer records keys about a
// package's objects while visiting it and reads the keys recorded for
// its dependencies. RunAnalyzers shares one store across every package
// of a run and visits packages in dependency order (Load preserves the
// deps-first order `go list -deps` emits), so by the time a package is
// analyzed the facts of everything it imports are present.
//
// Keys are namespaced by kind ("envroot", "conduit", "foreign", ...)
// and name fully qualified ("<import path>.<Type>[.<member>]"), so
// analyzers cannot collide.
type Facts struct {
	m map[string]bool
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[string]bool{}} }

// Set records the (kind, key) fact. Set on a nil store is a no-op so
// analyzers run without a driver (unit tests) degrade gracefully.
func (f *Facts) Set(kind, key string) {
	if f == nil {
		return
	}
	f.m[kind+"\x00"+key] = true
}

// Has reports whether the (kind, key) fact was recorded.
func (f *Facts) Has(kind, key string) bool {
	return f != nil && f.m[kind+"\x00"+key]
}
