package paramdoc_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/paramdoc"
)

func TestParamDoc(t *testing.T) {
	analysistest.Run(t, "testdata", paramdoc.Analyzer, "a")
}
