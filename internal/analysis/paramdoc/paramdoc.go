// Package paramdoc requires a doc comment on every exported field of the
// exported *Config structs. The Config structs are the repository's
// experiment surface — each field is a knob someone will sweep in a paper
// figure — so an undocumented knob is an unreproducible experiment.
package paramdoc

import (
	"go/ast"
	"go/token"
	"strings"

	"xssd/internal/analysis"
)

// Analyzer is the paramdoc check.
var Analyzer = &analysis.Analyzer{
	Name: "paramdoc",
	Doc: `require doc comments on exported fields of exported Config structs

Every exported field of an exported struct named Config (or *Config) must
carry a doc comment or an inline trailing comment stating its meaning,
unit, and zero-value default. Unexported fields and embedded fields are
not checked.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				name := ts.Name.Name
				if !ast.IsExported(name) || !strings.HasSuffix(name, "Config") {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				checkFields(pass, name, st)
			}
		}
	}
	return nil
}

func checkFields(pass *analysis.Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded field
		}
		if field.Doc != nil || field.Comment != nil {
			continue
		}
		for _, id := range field.Names {
			if ast.IsExported(id.Name) {
				pass.Reportf(id.Pos(), "exported config field %s.%s has no doc comment; document the knob (meaning, unit, zero default)", typeName, id.Name)
			}
		}
	}
}
