// Package a exercises the paramdoc analyzer: undocumented exported fields
// of exported Config structs are reported; documented, inline-commented,
// unexported and non-Config fields are not.
package a

// Config tunes the widget.
type Config struct {
	// Documented is a properly documented knob.
	Documented int
	Workers    int // want "exported config field Config.Workers has no doc comment"
	BatchBytes int // want "exported config field Config.BatchBytes has no doc comment"
	Inline     int // inline trailing comments count as documentation
	internal   int
}

// TuningConfig shows the *Config suffix is matched too.
type TuningConfig struct {
	Depth int // want "exported config field TuningConfig.Depth has no doc comment"
}

// options is unexported: not an experiment surface, not checked.
type options struct {
	Whatever int
}

// Stats is not a Config struct: undocumented fields are fine here.
type Stats struct {
	Count int
}
