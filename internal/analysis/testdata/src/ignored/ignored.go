// Package ignored exercises the //xssd:ignore escape hatch: every
// construct below violates one analyzer on purpose and carries an ignore
// directive on its own line or the line above, so all seven analyzers —
// and the directive validator — must stay silent here.
package ignored

import (
	"fmt"

	"xssd/internal/ring"
	"xssd/internal/sim"
)

// errdiscipline: %v flattening sanctioned for a frozen CLI string.
func wrapLegacy(err error) error {
	//xssd:ignore errdiscipline the CLI surface promises this exact string
	return fmt.Errorf("boom: %v", err)
}

// errdiscipline: deliberate best-effort discard outside a defer.
func bestEffort(r *ring.Ring) {
	//xssd:ignore errdiscipline best-effort release on the teardown path
	r.Release(8)
}

// maporder: scheduling in map order, proven harmless by construction.
func fanout(env *sim.Env, procs map[string]func(*sim.Proc)) {
	for name, fn := range procs {
		//xssd:ignore maporder spawned processes never interact, order is irrelevant
		env.Go(name, fn)
	}
}

// simdeterminism: a host-side helper that never runs inside a simulation.
func spawnRaw(f func()) {
	//xssd:ignore simdeterminism host-side helper, never runs inside a simulation
	go f()
}

// paramdoc: an intentionally undocumented experiment knob. The ignore
// sits on the line above the field because any comment attached to the
// field itself would count as its documentation.
//
//xssd:ignore paramdoc internal experiment knob, intentionally undocumented
type TuneConfig struct{ Knob int }

type pool struct {
	//xssd:pool put
	free  [][]byte
	stash [][]byte
}

//xssd:pool get
func (p *pool) get() []byte {
	if len(p.free) == 0 {
		return make([]byte, 8)
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

// bufownership: retention outside an annotated field, audited by hand.
func (p *pool) keep() {
	b := p.get()
	//xssd:ignore bufownership the stash drains before the pool compacts
	p.stash = append(p.stash, b)
}

// hotpathalloc: the mandatory private copy on a delayed path.
//
//xssd:hotpath
func (p *pool) hotCopy(b []byte) []byte {
	//xssd:ignore hotpathalloc delayed-fault path must copy (DESIGN.md §9)
	return append([]byte(nil), b...)
}

//xssd:envroot
type node struct{ n int }

// envaffinity: a migration helper audited by hand.
func touchBoth(p *sim.Proc, a, b *node) {
	a.n++
	//xssd:ignore envaffinity migration helper audited by hand
	b.n++
}
