// Package analysis is a minimal, self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus a module-aware package loader built on `go list -export` and the
// standard library's gc importer.
//
// The build environment for this repository has no module proxy access, so
// the real x/tools module cannot be pulled in. The subset here keeps the
// same shape (an Analyzer owns a Run func that receives a Pass and calls
// Report), so the checkers in the sibling packages can migrate to the real
// framework later by swapping imports; until then `cmd/xvet` is the
// multichecker-style driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It is the unit the xvet driver and
// the analysistest harness operate on.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// Pass presents one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the run-wide cross-package note store (may be nil when an
	// analyzer is driven outside RunAnalyzers). Packages are visited in
	// dependency order, so facts about imported packages are already
	// recorded when a pass runs.
	Facts *Facts

	// Report delivers one finding. Set by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer // filled by the driver
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Callee resolves the function or method a call expression invokes, or nil
// when the call is not a static function call (conversions, calls of
// function-typed values, built-ins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj() // method or field selection
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier (pkg.Func)
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// Unparen strips any enclosing parentheses from e.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
