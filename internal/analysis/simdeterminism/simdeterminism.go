// Package simdeterminism flags constructs that break the simulator's
// bit-for-bit reproducibility promise (internal/sim): wall-clock reads,
// nondeterministically seeded global math/rand calls, and goroutines
// spawned outside the sim scheduler.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"xssd/internal/analysis"
)

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: `forbid wall-clock time, global math/rand and raw goroutines in simulator code

The simulation engine serializes all processes and orders events by
(virtual time, sequence number), so a run is a pure function of its seed.
time.Now (and friends), the globally seeded math/rand top-level functions,
and go statements that bypass (*sim.Env).Go all reintroduce host
nondeterminism. internal/sim itself, the internal/obs metrics layer
(whose instruments are driven entirely by sim virtual time), and the
cmd/ entry points are exempt.`,
	Run: run,
}

// wallClock lists the time package functions that read or wait on the host
// clock. Pure constructors/converters (Duration, Unix, Date...) are fine.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randOK lists math/rand (and v2) top-level functions that construct
// explicitly seeded generators rather than using the global source.
var randOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func exempt(path string) bool {
	return path == "xssd/internal/sim" ||
		path == "xssd/internal/obs" ||
		strings.HasPrefix(path, "xssd/cmd/")
}

func run(pass *analysis.Pass) error {
	if exempt(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement bypasses the sim scheduler; spawn processes with (*sim.Env).Go")
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil { // methods (e.g. (*rand.Rand).Intn) are fine
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock and breaks run reproducibility; use sim virtual time (Env.Now/Proc.Sleep)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randOK[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s is nondeterministically seeded; use the environment's seeded source (sim.Env.Rand)", fn.Pkg().Name(), fn.Name())
		}
	}
}
