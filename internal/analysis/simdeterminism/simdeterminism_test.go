package simdeterminism_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer, "a", "faulthook", "xssd/cmd/demo", "xssd/internal/obs")
}
