// Package demo sits under the xssd/cmd/ allowlist: entry points may read
// the wall clock (progress output, CLI timeouts) without breaking the
// simulation, so nothing here is reported.
package demo

import "time"

func Stamp() time.Time {
	return time.Now() // deliberately no report: cmd/ packages are exempt
}

func Spawn(fn func()) {
	go fn() // deliberately no report: cmd/ packages are exempt
}
