// Package obs stands in for the metrics layer, which is sanctioned:
// its instruments record sim virtual time only, and its snapshot code
// may legitimately touch time helpers without breaking reproducibility.
package obs

import "time"

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // deliberately no report: internal/obs is exempt
}

func Flush(fn func()) {
	go fn() // deliberately no report: internal/obs is exempt
}
