// Package faulthook exercises the simdeterminism analyzer on the fault
// hook-site pattern: injector checks inside device code must draw
// randomness from a seeded source, stamp firings with virtual time, and
// spawn repair work through the sim scheduler.
package faulthook

import (
	"math/rand"
	"time"

	"xssd/internal/sim"
)

type firing struct {
	at time.Duration
}

type injector struct {
	env *sim.Env
	rng *rand.Rand

	firings []firing
}

// badProbCheck draws the probabilistic trigger from the global source:
// a different fault schedule every run, which breaks replayability.
func (i *injector) badProbCheck(p float64) bool {
	return rand.Float64() < p // want "global rand.Float64 is nondeterministically seeded"
}

// badStamp records the firing against the wall clock instead of the
// simulation clock.
func (i *injector) badStamp() {
	_ = time.Now() // want "time.Now reads the wall clock"
}

// badRepair spawns the resend loop as a raw goroutine, so its
// interleaving with device processes is up to the Go runtime.
func (i *injector) badRepair(resend func()) {
	go resend() // want "raw go statement bypasses the sim scheduler"
}

// goodProbCheck is the sanctioned hook: the injector owns a *rand.Rand
// seeded once from the environment, so (seed, plan) determines firings.
func (i *injector) goodProbCheck(p float64) bool {
	return i.rng.Float64() < p
}

// goodStamp records virtual time.
func (i *injector) goodStamp() {
	i.firings = append(i.firings, firing{at: i.env.Now()})
}

// goodRepair runs the resend loop as a scheduled process.
func (i *injector) goodRepair(resend func(*sim.Proc)) {
	i.env.Go("fault-repair", resend)
}

func newInjector(env *sim.Env) *injector {
	return &injector{env: env, rng: rand.New(rand.NewSource(env.Rand().Int63()))}
}
