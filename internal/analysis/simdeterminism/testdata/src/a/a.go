// Package a exercises the simdeterminism analyzer: wall-clock reads,
// global math/rand use, and raw goroutines are reported; explicitly
// seeded sources, virtual-time arithmetic and *rand.Rand methods are not.
package a

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()       // want "time.Now reads the wall clock"
	time.Sleep(time.Second) // want "time.Sleep reads the wall clock"
	return time.Since(t0)  // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "global rand.Intn is nondeterministically seeded"
}

func rawGoroutine(fn func()) {
	go fn() // want "raw go statement bypasses the sim scheduler"
}

// seededRand is fine: the generator's stream is a pure function of seed.
func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // methods on an explicit *rand.Rand are not reported
}

// virtualTime is fine: conversions and constants don't read the clock.
func virtualTime(ns int64) time.Duration {
	return time.Duration(ns) * time.Microsecond
}
