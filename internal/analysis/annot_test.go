package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		ok   bool
		name string
		args []string
	}{
		{"//xssd:hotpath", true, "hotpath", nil},
		{"//xssd:pool get", true, "pool", []string{"get"}},
		{"//xssd:ignore maporder order proven irrelevant", true, "ignore",
			[]string{"maporder", "order", "proven", "irrelevant"}},
		{"//xssd:conduit takeover barrier", true, "conduit", []string{"takeover", "barrier"}},
		{"//xssd:", true, "", nil},           // parses (so it can be reported), name empty
		{"// xssd:hotpath", false, "", nil},  // space after //: prose, not a directive
		{"//go:noinline", false, "", nil},    // different directive namespace
		{"/*xssd:hotpath*/", false, "", nil}, // block comments never carry directives
		{"// plain documentation", false, "", nil},
	}
	for _, c := range cases {
		d, ok := ParseDirective(c.text)
		if ok != c.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != c.name {
			t.Errorf("ParseDirective(%q) name = %q, want %q", c.text, d.Name, c.name)
		}
		if got, want := strings.Join(d.Args, " "), strings.Join(c.args, " "); got != want {
			t.Errorf("ParseDirective(%q) args = %q, want %q", c.text, got, want)
		}
	}
}

func TestDirectiveProblem(t *testing.T) {
	cases := []struct {
		text    string
		problem string // substring of the expected problem, "" = well formed
	}{
		{"//xssd:hotpath", ""},
		{"//xssd:envroot", ""},
		{"//xssd:foreign", ""},
		{"//xssd:pool retain", ""},
		{"//xssd:pool alias", ""},
		{"//xssd:ignore hotpathalloc the delay path must copy", ""},
		{"//xssd:conduit barrier transfer", ""},
		{"//xssd:hotpth", "unknown //xssd: directive"},
		{"//xssd:", "unknown //xssd: directive"},
		{"//xssd:ignore hotpathalloc", "needs an analyzer name and a reason"},
		{"//xssd:ignore", "needs an analyzer name and a reason"},
		{"//xssd:pool", "needs a class"},
		{"//xssd:pool borrow", "class must be get, put, retain, or alias"},
		{"//xssd:conduit", "needs a reason"},
	}
	for _, c := range cases {
		d, ok := ParseDirective(c.text)
		if !ok {
			t.Fatalf("ParseDirective(%q) did not recognize a directive", c.text)
		}
		p := directiveProblem(d)
		if c.problem == "" && p != "" {
			t.Errorf("directiveProblem(%q) = %q, want well formed", c.text, p)
		}
		if c.problem != "" && !strings.Contains(p, c.problem) {
			t.Errorf("directiveProblem(%q) = %q, want containing %q", c.text, p, c.problem)
		}
	}
}

const malformedSrc = `package p

//xssd:ignore maporder
func a() {}

//xssd:pool borrow
func b() {}

//xssd:condiut typo here
func c() {}

//xssd:hotpath
func fine() {}
`

func TestValidateDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", malformedSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := ValidateDirectives([]*ast.File{f})
	wants := []string{
		"needs an analyzer name and a reason",
		"class must be get, put, retain, or alias",
		"unknown //xssd: directive",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(wants), diags)
	}
	for i, w := range wants {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want containing %q", i, diags[i].Message, w)
		}
		if diags[i].Analyzer != DirectiveAnalyzer {
			t.Errorf("diagnostic %d attributed to %v, want DirectiveAnalyzer", i, diags[i].Analyzer)
		}
	}
}

func TestIgnoreIndexSuppressed(t *testing.T) {
	src := `package p

//xssd:ignore maporder reason one
func a() {} //xssd:ignore errdiscipline reason two
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix := BuildIgnoreIndex(fset, []*ast.File{f})
	pos := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !ix.Suppressed(pos(3), "maporder") {
		t.Error("ignore on its own line not suppressed")
	}
	if !ix.Suppressed(pos(4), "maporder") {
		t.Error("ignore on the line above not suppressed")
	}
	if !ix.Suppressed(pos(4), "errdiscipline") {
		t.Error("trailing same-line ignore not suppressed")
	}
	if ix.Suppressed(pos(4), "paramdoc") {
		t.Error("unrelated analyzer suppressed")
	}
	if ix.Suppressed(pos(5), "maporder") {
		t.Error("suppression leaked two lines down")
	}
}
