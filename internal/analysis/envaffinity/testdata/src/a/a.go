// Package a exercises the envaffinity analyzer: a simulated process
// touching the state of two ownership roots, or reaching through an
// //xssd:foreign field, is reported; conduits and reference-holding are
// not.
package a

import "xssd/internal/sim"

// Device roots an ownership domain: everything reachable from one
// Device belongs to the sim.Env it is attached to.
//
//xssd:envroot
type Device struct {
	env *sim.Env
	n   int
}

type link struct {
	// peer is held for identity and wiring only.
	//
	//xssd:foreign
	peer *Device

	acked int
}

// copyCount straddles two Envs from one proc.
func copyCount(p *sim.Proc, src, dst *Device) {
	dst.n = src.n // want "cross-Env access: copyCount touches state of both dst and src"
}

// closures handed to the Env run in process context too.
func closureCase(d, e *Device) {
	d.env.Go("worker", func(p *sim.Proc) {
		d.n++
		e.n++ // want "cross-Env access: closureCase closure touches state of both d and e"
	})
}

// readThroughPeer dereferences a foreign back-pointer into the peer's
// state.
func readThroughPeer(p *sim.Proc, l *link) int {
	return l.peer.n // want "reaches through //xssd:foreign field peer"
}

// rebalance is a sanctioned crossing: its body is exempt.
//
//xssd:conduit rewiring at the barrier: no traffic flows meanwhile
func rebalance(p *sim.Proc, a, b *Device) {
	b.n = a.n
}

// Backfill is a sanctioned crossing; calls to it do not count as an
// access of the receiver's state.
//
//xssd:conduit the receiver copies on arrival
func (d *Device) Backfill(p *sim.Proc, n int) {
	d.n = n
}

// driveBackfill stays single-Env: the only touch of peer goes through a
// conduit; no report.
func driveBackfill(p *sim.Proc, local, peer *Device) {
	local.n++
	peer.Backfill(p, local.n)
}

// holdPeer compares the foreign pointer without dereferencing through
// it; no report.
func holdPeer(p *sim.Proc, l *link, d *Device) bool {
	l.acked++
	return l.peer == d
}

// localOnly holds a second root without touching its state; no report.
func localOnly(p *sim.Proc, d, peer *Device) {
	d.n++
	_ = peer
}

// port models the parallel engine's group mailbox: it holds the peer for
// addressing only, and its Post method is the sanctioned crossing (the
// value lands in the peer's Env at the next barrier).
type port struct {
	//xssd:foreign
	dst *Device

	posted int
}

// Post ships one value through the mailbox.
//
//xssd:conduit delivered through the group mailbox at the barrier
func (pt *port) Post(v int) {
	pt.dst.n = v
}

// sendViaMailbox is the legal parallel-engine pattern: the proc touches
// only its local Device; the peer is reached exclusively through the
// mailbox conduit. No report.
func sendViaMailbox(p *sim.Proc, local *Device, pt *port) {
	local.n++
	pt.posted++
	pt.Post(local.n)
}

// mailboxClosure does the same from an Env.Go closure; also legal.
func mailboxClosure(local *Device, pt *port) {
	local.env.Go("mirror", func(p *sim.Proc) {
		local.n++
		pt.Post(local.n)
	})
}

// peekPeer bypasses the mailbox and reads the peer's state directly —
// under the parallel engine this is a data race with the peer's worker.
func peekPeer(p *sim.Proc, local *Device, pt *port) {
	local.n = pt.dst.n // want "reaches through //xssd:foreign field dst"
}

// pokePeer writes the peer's state directly from a closure instead of
// posting; a finding for the same reason.
func pokePeer(local *Device, pt *port) {
	local.env.Go("poke", func(p *sim.Proc) {
		pt.dst.n = local.n // want "reaches through //xssd:foreign field dst"
	})
}
