package envaffinity_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/envaffinity"
)

func TestEnvAffinity(t *testing.T) {
	analysistest.Run(t, "testdata", envaffinity.Analyzer, "a")
}
