// Package envaffinity computes which sim.Env owns attached device state
// and flags simulated processes that touch state owned by more than one
// Env without going through an approved conduit. It is the
// machine-checked precondition for running each Env on its own OS
// thread (ROADMAP: parallel engine): a proc whose accesses stay inside
// one Env's ownership domain can run without locks.
package envaffinity

import (
	"go/ast"
	"go/types"
	"strings"

	"xssd/internal/analysis"
)

// Fact kinds recorded in the run-wide store.
const (
	factEnvRoot = "envroot"
	factConduit = "conduit"
	factForeign = "foreign"
)

// Analyzer is the envaffinity check.
var Analyzer = &analysis.Analyzer{
	Name: "envaffinity",
	Doc: `flag cross-Env state access outside approved conduits

Types annotated //xssd:envroot (the villars Device) root an ownership
domain: everything reachable from one value of such a type belongs to
the sim.Env that value is attached to. A function running in simulated
process context (it has a *sim.Proc parameter, or is a closure handed to
Env.Go/After/At) must confine its accesses to a single root. Touching
two roots means the proc would straddle two Envs once the engine runs
Envs on separate threads.

Sanctioned crossings are declared, not inferred: //xssd:conduit <reason>
on a function or method (ntb delivery, transport mirror/backfill,
failover takeover at the barrier) exempts its body and makes calls to it
not count as an access; //xssd:foreign on a struct field (a transport
peer's back-pointer) permits holding the reference but flags any access
through it. Facts are recorded per package and visible to dependents, so
the check is cross-package.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	collect(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, isConduit := analysis.FindDirective(fd.Doc, "conduit"); isConduit {
				continue
			}
			c := &checker{pass: pass}
			if hasProcParam(pass, fd) {
				c.checkBody(fd.Name.Name, fd.Body)
			}
			// Closures handed to the Env run in process context too, even
			// from functions that are not themselves procs.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil || !isEnvMethod(fn, "Go", "After", "At") {
					return true
				}
				for _, arg := range call.Args {
					if lit, ok := analysis.Unparen(arg).(*ast.FuncLit); ok {
						cc := &checker{pass: pass}
						cc.checkBody(fd.Name.Name+" closure", lit.Body)
					}
				}
				return true
			})
		}
	}
	return nil
}

// collect records this package's annotations as run-wide facts.
func collect(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if _, ok := analysis.FindDirective(d.Doc, "conduit"); ok {
					if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
						pass.Facts.Set(factConduit, funcKey(fn))
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					if _, ok := analysis.FindDirective(doc, "envroot"); ok {
						pass.Facts.Set(factEnvRoot, pass.Pkg.Path()+"."+ts.Name.Name)
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						_, ok := analysis.FindDirective(field.Doc, "foreign")
						if !ok {
							_, ok = analysis.FindDirective(field.Comment, "foreign")
						}
						if !ok {
							continue
						}
						for _, name := range field.Names {
							pass.Facts.Set(factForeign,
								pass.Pkg.Path()+"."+ts.Name.Name+"."+name.Name)
						}
					}
				}
			}
		}
	}
}

// checker scans one process-context body.
type checker struct {
	pass *analysis.Pass
	// roots maps each accessed envroot variable to its first access; the
	// slice keeps first-access order.
	order []types.Object
	first map[types.Object]*ast.SelectorExpr
}

func (c *checker) checkBody(name string, body *ast.BlockStmt) {
	c.first = map[types.Object]*ast.SelectorExpr{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Access through a //xssd:foreign field: holding the pointer is
		// sanctioned, dereferencing into the peer's state is not.
		if inner, ok := analysis.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if f, owner := c.fieldObj(inner); f != nil && c.foreignField(f, owner) {
				c.pass.Reportf(sel.Pos(),
					"cross-Env access: %s reaches through //xssd:foreign field %s into the peer's state; route it through a conduit or the wire",
					name, f.Name())
			}
		}
		root := c.rootOf(sel.X)
		if root == nil {
			return true
		}
		if c.conduitCall(sel) {
			return true
		}
		if _, seen := c.first[root]; !seen {
			c.first[root] = sel
			c.order = append(c.order, root)
		}
		return true
	})
	if len(c.order) < 2 {
		return
	}
	home := c.order[0]
	for _, other := range c.order[1:] {
		sel := c.first[other]
		c.pass.Reportf(sel.Pos(),
			"cross-Env access: %s touches state of both %s and %s, which are attached to different sim.Envs; go through an approved conduit (//xssd:conduit) or the wire",
			name, home.Name(), other.Name())
	}
}

// rootOf resolves the base of a selector to an envroot-typed variable
// (directly, through a pointer, or as an element of a slice/array of
// roots). Field chains are not roots: a module reaching its own device
// through m.dev stays inside one Env by construction.
func (c *checker) rootOf(e ast.Expr) types.Object {
	e = analysis.Unparen(e)
	for {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = analysis.Unparen(ix.X)
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if c.envRootType(v.Type()) {
		return v
	}
	return nil
}

// envRootType strips pointers and slices and asks the fact store.
func (c *checker) envRootType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return c.pass.Facts.Has(factEnvRoot, n.Obj().Pkg().Path()+"."+n.Obj().Name())
}

// conduitCall reports whether sel selects a //xssd:conduit method.
func (c *checker) conduitCall(sel *ast.SelectorExpr) bool {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return c.pass.Facts.Has(factConduit, funcKey(fn))
		}
	}
	return false
}

// fieldObj resolves a selector to a struct field and the name of the
// struct type it was selected from.
func (c *checker) fieldObj(sel *ast.SelectorExpr) (*types.Var, string) {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v, recvName(s.Recv())
		}
	}
	return nil, ""
}

// foreignField asks the fact store whether the owner's field carries
// //xssd:foreign.
func (c *checker) foreignField(f *types.Var, owner string) bool {
	if f.Pkg() == nil || owner == "" {
		return false
	}
	return c.pass.Facts.Has(factForeign, f.Pkg().Path()+"."+owner+"."+f.Name())
}

func funcKey(fn *types.Func) string {
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		key += recvName(sig.Recv().Type()) + "."
	}
	return key + fn.Name()
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isEnvMethod(fn *types.Func, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	p, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Name() != "Env" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	if path != "sim" && !strings.HasSuffix(path, "/sim") {
		return false
	}
	for _, want := range names {
		if fn.Name() == want {
			return true
		}
	}
	return false
}

func hasProcParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		if t, ok := pass.TypesInfo.Types[f.Type]; ok && t.Type != nil && isProcPtr(t.Type) {
			return true
		}
	}
	return false
}

func isProcPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Name() != "Proc" || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "sim" || strings.HasSuffix(path, "/sim")
}
