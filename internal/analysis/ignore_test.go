package analysis_test

import (
	"testing"

	"xssd/internal/analysis"
	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/bufownership"
	"xssd/internal/analysis/envaffinity"
	"xssd/internal/analysis/errdiscipline"
	"xssd/internal/analysis/hotpathalloc"
	"xssd/internal/analysis/maporder"
	"xssd/internal/analysis/paramdoc"
	"xssd/internal/analysis/simdeterminism"
)

// TestIgnoreEscapeHatch runs every analyzer over a package whose
// violations all carry //xssd:ignore directives. The testdata has no
// want comments, so any surviving diagnostic fails the test — proving
// the escape hatch works uniformly across the whole suite (and that the
// directives themselves validate).
func TestIgnoreEscapeHatch(t *testing.T) {
	for _, a := range []*analysis.Analyzer{
		bufownership.Analyzer,
		envaffinity.Analyzer,
		errdiscipline.Analyzer,
		hotpathalloc.Analyzer,
		maporder.Analyzer,
		paramdoc.Analyzer,
		simdeterminism.Analyzer,
		analysis.DirectiveAnalyzer,
	} {
		analysistest.Run(t, "testdata", a, "ignored")
	}
}
