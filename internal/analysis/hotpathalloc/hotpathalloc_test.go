package hotpathalloc_test

import (
	"testing"

	"xssd/internal/analysis/analysistest"
	"xssd/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
