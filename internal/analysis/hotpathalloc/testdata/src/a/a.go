// Package a exercises the hotpathalloc analyzer: allocation-introducing
// constructs inside //xssd:hotpath functions are reported; the same
// constructs in unannotated functions and the amortized reuse idioms are
// not.
package a

import "fmt"

func sinkAny(v interface{}) {}

type mod struct {
	bufs [][]byte
	name string
	n    int
}

func (m *mod) helper() int { return m.n }

// cold is unannotated: allocation is fine here.
func (m *mod) cold(n int) []byte {
	return make([]byte, n)
}

//xssd:hotpath
func (m *mod) hotMake(n int) []byte {
	return make([]byte, n) // want "make allocates on every call"
}

//xssd:hotpath
func (m *mod) hotNew() *int {
	return new(int) // want "new allocates on every call"
}

//xssd:hotpath
func (m *mod) hotFmt(n int) {
	_ = fmt.Sprintf("%d", n) // want "formats through reflection and allocates"
}

//xssd:hotpath
func (m *mod) hotClosure(n int) func() int {
	return func() int { return n } // want "closure capturing n escapes to the heap"
}

//xssd:hotpath
func (m *mod) hotBox(v int64) {
	sinkAny(v) // want "boxes the value on the heap"
}

// hotBoxPtr passes a pointer-shaped value; no box, no report.
//
//xssd:hotpath
func (m *mod) hotBoxPtr() {
	sinkAny(m)
}

//xssd:hotpath
func (m *mod) hotLiterals() {
	xs := []int{1, 2} // want "slice literal allocates on every call"
	_ = xs
	ys := map[string]int{} // want "map literal allocates on every call"
	_ = ys
	p := &mod{} // want "&composite literal heap-allocates on every call"
	_ = p
}

//xssd:hotpath
func (m *mod) hotConcat(tag string) string {
	return m.name + tag // want "string concatenation allocates"
}

//xssd:hotpath
func (m *mod) hotBind() func() int {
	return m.helper // want "bound method value helper allocates"
}

//xssd:hotpath
func (m *mod) hotGrowFromEmpty(vals []int) int {
	var acc []int
	for _, v := range vals {
		acc = append(acc, v) // want "append grows acc from empty on every call"
	}
	return len(acc)
}

//xssd:hotpath
func (m *mod) hotLitAppend(vals []int) []int {
	return append([]int{}, vals...) // want "append to a slice literal allocates on every call" "slice literal allocates on every call"
}

//xssd:hotpath
func (m *mod) hotNilCopy(b []byte) []byte {
	return append([]byte(nil), b...) // want "append to a fresh nil slice copies on every call"
}

// hotReuse is the amortized pattern: append to a pooled field whose
// backing array survives across calls; no report.
//
//xssd:hotpath
func (m *mod) hotReuse(b []byte) {
	m.bufs = append(m.bufs, b)
}
