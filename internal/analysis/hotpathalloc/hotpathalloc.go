// Package hotpathalloc guards the simulator's zero-allocation fast paths
// (DESIGN.md §9): for every function whose doc comment carries
// //xssd:hotpath, it flags constructs that introduce a heap allocation
// per call — the regressions that silently eat the engine's events/s.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"xssd/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid allocation-introducing constructs in //xssd:hotpath functions

The PR 4 fast paths (event heap, now-queue, CMB append, destage, transport
mirroring, obs counter updates) are amortized zero-alloc: buffers recycle
through pools and queues reuse their backing arrays. A single fmt call,
escaping closure, interface boxing, or append that grows a fresh slice on
every invocation undoes that invisibly — benchmarks drift, no test fails.
Functions annotated //xssd:hotpath are held to the contract mechanically.
Sanctioned allocations (a delayed-fault path's mandatory private copy, a
pipeline's per-page worker) carry //xssd:ignore hotpathalloc <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// check walks one hot function's body. Nested function literals are
// reported as escaping closures when they capture enclosing state, and
// their bodies are not descended into — they run elsewhere.
func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	emptyLocals := emptySliceLocals(pass, fd.Body)
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := captures(pass, fd, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "hot path: closure capturing %s escapes to the heap", caps[0])
			}
			return false
		case *ast.CallExpr:
			checkCall(pass, fd, n, emptyLocals)
			// Descend into arguments, but not through Fun's selector (a
			// method expression used as callee is not a method value).
			for _, a := range n.Args {
				ast.Inspect(a, walk)
			}
			if inner, ok := analysis.Unparen(n.Fun).(*ast.CallExpr); ok {
				ast.Inspect(inner, walk)
			}
			return false
		case *ast.SelectorExpr:
			// A selector in value position resolving to a method creates a
			// bound method value — one allocation per evaluation.
			if obj, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && obj.Type() != nil {
				if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
					pass.Reportf(n.Pos(), "hot path: bound method value %s allocates; bind it once outside the hot path", n.Sel.Name)
				}
			}
			return false
		case *ast.CompositeLit:
			if t, ok := pass.TypesInfo.Types[n]; ok && t.Type != nil {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "hot path: %s literal allocates on every call", kindName(t.Type))
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := analysis.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: &composite literal heap-allocates on every call")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t, ok := pass.TypesInfo.Types[n]; ok && t.Type != nil {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "hot path: string concatenation allocates; build the string once outside the hot path")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCall flags allocating calls: fmt, make/new, and interface boxing
// of non-pointer-shaped arguments.
func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, emptyLocals map[types.Object]bool) {
	if id, ok := analysis.Unparen(call.Fun).(*ast.Ident); ok {
		switch pass.TypesInfo.Uses[id] {
		case types.Universe.Lookup("make"):
			pass.Reportf(call.Pos(), "hot path: make allocates on every call; recycle through a pool")
			return
		case types.Universe.Lookup("new"):
			pass.Reportf(call.Pos(), "hot path: new allocates on every call; recycle through a pool")
			return
		case types.Universe.Lookup("append"):
			checkAppend(pass, fd, call, emptyLocals)
			return
		}
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path: fmt.%s formats through reflection and allocates", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if _, isIface := at.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: converting %s to %s boxes the value on the heap", at.Type.String(), pt.String())
	}
}

// checkAppend flags appends whose destination starts empty on every
// call — the amortized-growth idioms (append to a pooled field, or to a
// local seeded from a field such as `h := append(e.heap, ev)`) stay
// quiet.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, emptyLocals map[types.Object]bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := analysis.Unparen(call.Args[0])
	for {
		switch d := dst.(type) {
		case *ast.IndexExpr:
			dst = analysis.Unparen(d.X)
			continue
		case *ast.SliceExpr:
			dst = analysis.Unparen(d.X)
			continue
		}
		break
	}
	switch d := dst.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[d]; obj != nil && emptyLocals[obj] {
			pass.Reportf(call.Pos(), "hot path: append grows %s from empty on every call; reuse a pooled buffer", d.Name)
		}
	case *ast.CompositeLit:
		pass.Reportf(call.Pos(), "hot path: append to a slice literal allocates on every call")
	case *ast.CallExpr:
		// A conversion like []byte(nil) — the private-copy idiom — is an
		// allocation per call; sanctioned uses carry an ignore directive.
		// IsNil must be asked of the conversion's operand: the conversion
		// expression itself is an ordinary value.
		if t, ok := pass.TypesInfo.Types[d.Fun]; ok && t.IsType() && len(d.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[analysis.Unparen(d.Args[0])]; ok && tv.IsNil() {
				pass.Reportf(call.Pos(), "hot path: append to a fresh nil slice copies on every call")
			}
		}
	}
}

// emptySliceLocals collects locals declared with no backing array (`var
// x []T`, `x := []T{}`, `x := []T(nil)`): appending to one allocates on
// every invocation of the function.
func emptySliceLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && isSlice(obj.Type()) {
						out[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				rhs := analysis.Unparen(n.Rhs[i])
				if cl, ok := rhs.(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					out[obj] = true
				}
				if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.IsNil() {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// captures returns the names of variables a function literal references
// that are declared in the enclosing function — the free variables that
// force the closure (and them) onto the heap.
func captures(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
			return true // package-level or foreign
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // the literal's own local or parameter
		}
		seen[obj] = true
		out = append(out, obj.Name())
		return true
	})
	return out
}

// pointerShaped reports whether values of t fit in a pointer word, so
// converting one to an interface does not allocate a box.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	default:
		return "slice"
	}
}
