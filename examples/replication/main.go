// Replication: a three-node X-SSD cluster shipping the transaction log
// over NTB. The primary's fast-side writes mirror to two secondaries;
// under the eager scheme, fsync returns only once every replica has
// persisted the data. The example then kills the primary and promotes a
// secondary (paper §4.2, §7.1).
package main

import (
	"fmt"
	"time"

	"xssd"
)

func main() {
	sys := xssd.NewSystem(7)
	n0 := sys.MustDevice(xssd.DeviceOptions{Name: "n0"})
	n1 := sys.MustDevice(xssd.DeviceOptions{Name: "n1"})
	n2 := sys.MustDevice(xssd.DeviceOptions{Name: "n2"})

	cluster, err := sys.NewCluster(n0, n1, n2)
	if err != nil {
		panic(err)
	}

	sys.Run(func(p *xssd.Proc) {
		if err := cluster.Setup(p, 0, xssd.Eager); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-12v cluster up: primary=%s, eager replication\n", p.Now(), cluster.PrimaryName())

		log := n0.OpenLog(p)
		for i := 0; i < 5; i++ {
			log.Pwrite(p, []byte(fmt.Sprintf("log entry %d: balance transfer batch\n", i)))
		}
		if err := log.Fsync(p); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-12v fsync done: %d bytes durable on ALL replicas (eager)\n", p.Now(), log.Written())
		for i, lag := range cluster.Lag() {
			fmt.Printf("              secondary %d lag: %d bytes\n", i, lag)
		}

		// Disaster: the primary loses power mid-flight.
		fmt.Printf("t=%-12v injecting power loss on %s\n", p.Now(), n0.Name())
		n0.InjectPowerLoss()

		if err := cluster.Promote(p, 1); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-12v failover complete: primary=%s\n", p.Now(), cluster.PrimaryName())

		// The new primary keeps replicating to the survivor.
		log1 := n1.OpenLog(p)
		log1.Pwrite(p, []byte("post-failover entry\n"))
		if err := log1.Fsync(p); err != nil {
			panic(err)
		}
		fmt.Printf("t=%-12v new primary committed and replicated to %s\n", p.Now(), n2.Name())

		cs := cluster.Stats()
		fmt.Printf("t=%-12v cluster: primary=%s scheme=%s promotions=%d\n",
			p.Now(), cs.Primary, cs.Scheme, cs.Promotions)

		// The dead node drains its fast side to flash on supercap energy.
		for !n0.Drained() {
			p.Sleep(time.Millisecond)
		}
		fmt.Printf("t=%-12v old primary drained cleanly after power loss: %v\n", p.Now(), n0.Drained())
	})
}
