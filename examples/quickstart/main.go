// Quickstart: open a simulated Villars X-SSD, write a transaction log
// through the drop-in API, fsync it, watch it destage to the conventional
// side, and read it back with tail-read semantics.
package main

import (
	"fmt"

	"xssd"
)

func main() {
	sys := xssd.NewSystem(1)
	dev, err := sys.NewDevice(xssd.DeviceOptions{Name: "log0", Backing: xssd.SRAM})
	if err != nil {
		panic(err)
	}

	sys.Run(func(p *xssd.Proc) {
		log := dev.OpenLog(p)

		// x_pwrite: paced by the device's credit counter, no syscall.
		records := []string{
			"BEGIN tx=1",
			"UPDATE account SET balance=balance-100 WHERE id=42",
			"UPDATE account SET balance=balance+100 WHERE id=43",
			"COMMIT tx=1",
		}
		for _, r := range records {
			off := log.Pwrite(p, []byte(r+"\n"))
			fmt.Printf("t=%-12v wrote %q at log offset %d\n", p.Now(), r, off)
		}

		// x_fsync: returns once the credit counter covers everything —
		// the records are persistent on the fast side's PM ring.
		if err := log.Fsync(p); err != nil {
			fmt.Println("fsync failed:", err)
			return
		}
		fmt.Printf("t=%-12v fsync complete: %d bytes durable\n", p.Now(), log.Written())

		// The same path, asynchronously: Submit hands back a SyncToken
		// instead of implying a later Fsync, so a worker can keep many
		// records in flight and collect durability when it needs it.
		var last xssd.SyncToken
		for tx := 2; tx <= 4; tx++ {
			last = log.Submit(p, []byte(fmt.Sprintf("BEGIN tx=%d ... COMMIT tx=%d\n", tx, tx)))
		}
		fmt.Printf("t=%-12v submitted through token %d, durable yet: %v\n",
			p.Now(), last, log.Poll(p, last))
		if err := log.Wait(p, last); err != nil { // Fsync targeted at the token
			fmt.Println("wait failed:", err)
			return
		}
		fmt.Printf("t=%-12v token %d durable: %d bytes total\n", p.Now(), last, log.Written())

		// The Destage module moves the ring onto flash in the background;
		// x_pread follows the destaged tail.
		reader := dev.OpenLog(p)
		buf := make([]byte, log.Written())
		if _, err := reader.Pread(p, buf); err != nil {
			fmt.Println("pread failed:", err)
			return
		}
		fmt.Printf("t=%-12v tail read from the conventional side:\n%s", p.Now(), buf)

		st := dev.Stats().Destage
		fmt.Printf("destage: %d flash pages (%d padded)\n", st.Pages, st.PartialPages)
	})
}
