// Multitenant: the paper's §7.2 hyperscaler scenario — several virtual
// databases sharing one X-SSD through SR-IOV-style virtual functions.
// Each tenant gets an independent fast side (its own ring, credit counter
// and destage range), so flow control and durability never cross tenant
// boundaries; this is also the §7.1 answer to multi-threaded log writers
// needing private counters.
package main

import (
	"fmt"

	"xssd"
)

func main() {
	sys := xssd.NewSystem(31)
	dev := sys.MustDevice(xssd.DeviceOptions{Name: "shared-ssd"})

	// Carve three tenant fast sides out of the device.
	var tenants []*xssd.VF
	for i := 1; i <= 3; i++ {
		vf, err := dev.NewVF(fmt.Sprintf("tenant%d", i), 64<<10, 8<<10, 128)
		if err != nil {
			panic(err)
		}
		tenants = append(tenants, vf)
	}

	// Each tenant runs its own log workload concurrently; sizes differ so
	// the independent credit counters are visible.
	done := 0
	for i, vf := range tenants {
		i, vf := i, vf
		sys.Go(vf.Name(), func(p *xssd.Proc) {
			log := vf.OpenLog(p)
			entries := 5 * (i + 1)
			for e := 0; e < entries; e++ {
				log.Pwrite(p, []byte(fmt.Sprintf("[%s] commit %d\n", vf.Name(), e)))
			}
			if err := log.Fsync(p); err != nil {
				panic(err)
			}
			fmt.Printf("t=%-12v %s: %d entries durable (%d bytes, private counter)\n",
				p.Now(), vf.Name(), entries, log.Written())

			// Tail-read the tenant's own destaged log: isolation check.
			buf := make([]byte, log.Written())
			if _, err := log.Pread(p, buf); err != nil {
				panic(err)
			}
			fmt.Printf("t=%-12v %s: tail read OK, first line: %q\n",
				p.Now(), vf.Name(), firstLine(buf))
			done++
		})
	}
	sys.Run(func(p *xssd.Proc) {
		for done < len(tenants) {
			p.Sleep(1 << 20)
		}
	})
	for _, vf := range tenants {
		st := vf.Stats()
		fmt.Printf("%-16s intake %4d B, destaged %4d B in %d pages\n",
			st.Name, st.CMB.BytesIn, st.Destage.Stream, st.Destage.Pages)
	}
	fmt.Println("all tenants finished with fully isolated fast sides")
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
