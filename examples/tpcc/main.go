// TPC-C: the paper's headline workload end to end — an in-memory database
// (the ERMIA stand-in) runs the TPC-C mix with group commit, persisting
// its write-ahead log through three different sinks: the Villars fast
// side, host NVDIMM, and the conventional NVMe path. The example then
// crashes the engine and recovers it from the Villars-destaged log.
package main

import (
	"fmt"
	"time"

	"xssd/internal/db"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
	"xssd/internal/xapi"
)

const (
	workers = 4
	txns    = 200 // per worker
)

func main() {
	fmt.Println("TPC-C through three log paths (4 workers x 200 transactions each):")
	for _, sinkName := range []string{"Villars-SRAM", "Memory", "NVMe"} {
		runWorkload(sinkName)
	}
	recoveryDemo()
}

func runWorkload(sinkName string) {
	env := sim.NewEnv(11)
	hostMem := pcie.NewHostMemory(1 << 21)
	dev := villars.New(env, villars.DefaultConfig("tpcc"), hostMem)

	var log *wal.Log
	mk := func(s wal.Sink) *wal.Log {
		return wal.NewLog(env, s, wal.Config{GroupBytes: 16 << 10, GroupTimeout: time.Millisecond})
	}
	switch sinkName {
	case "Memory":
		log = mk(wal.NewMemorySink(env, pm.NVDIMMSpec))
	case "NVMe":
		log = mk(wal.NewNVMeSink(dev, hostMem, 1<<20, 0, 4096))
	default:
		env.Go("open", func(p *sim.Proc) { log = mk(wal.NewVillarsSink(p, dev, sinkName)) })
		env.RunUntil(env.Now() + time.Millisecond)
	}

	eng := db.New(env, log)
	cfg := tpcc.DefaultConfig()
	tpcc.Load(eng, cfg, 3)

	start := env.Now()
	var totalLatency time.Duration
	var count int64
	for w := 0; w < workers; w++ {
		w := w
		env.Go("terminal", func(p *sim.Proc) {
			client := tpcc.NewClient(eng, cfg, int64(w), w%cfg.Warehouses+1)
			for i := 0; i < txns; i++ {
				t0 := p.Now()
				if _, err := client.RunMix(p); err == nil {
					totalLatency += p.Now() - t0
					count++
				}
			}
		})
	}
	env.RunUntil(env.Now() + 10*time.Second)
	elapsed := env.Now() - start
	commits, aborts := eng.Stats()
	_, flushes, bytes := log.Stats()
	fmt.Printf("  %-13s %5d commits, %2d aborts in %8v virtual  (avg txn %7v, %d log flushes, %d KB)\n",
		sinkName, commits, aborts, elapsed.Round(time.Microsecond),
		(totalLatency / time.Duration(max64(count, 1))).Round(time.Microsecond), flushes, bytes>>10)
}

func recoveryDemo() {
	fmt.Println("\nCrash recovery from the Villars-destaged log:")
	env := sim.NewEnv(13)
	hostMem := pcie.NewHostMemory(1 << 21)
	dev := villars.New(env, villars.DefaultConfig("tpcc"), hostMem)
	var log *wal.Log
	env.Go("open", func(p *sim.Proc) {
		log = wal.NewLog(env, wal.NewVillarsSink(p, dev, "Villars"), wal.Config{GroupBytes: 8 << 10, GroupTimeout: time.Millisecond})
	})
	env.RunUntil(time.Millisecond)

	eng := db.New(env, log)
	cfg := tpcc.DefaultConfig()
	tpcc.Load(eng, cfg, 3)
	env.Go("terminal", func(p *sim.Proc) {
		client := tpcc.NewClient(eng, cfg, 1, 1)
		for i := 0; i < 300; i++ {
			client.RunMix(p)
		}
	})
	env.RunUntil(env.Now() + 10*time.Second)
	commits, _ := eng.Stats()

	// Power loss: the device drains the fast side to flash on supercaps.
	dev.InjectPowerLoss()
	env.RunUntil(env.Now() + 200*time.Millisecond)
	fmt.Printf("  power loss injected; device drained: %v\n", dev.Drained())

	// A fresh engine replays the log tail from the conventional side.
	replica := db.New(env, nil)
	tpcc.Load(replica, cfg, 3)
	follower := db.NewFollower(replica)
	env.Go("recover", func(p *sim.Proc) {
		l := xapi.Open(p, dev, xapi.Options{HostMem: hostMem, Scratch: 1 << 20})
		buf := make([]byte, 4096)
		var read int64 // bytes consumed from the destaged tail
		for read < dev.Destage().DestagedStream() {
			n := int(dev.Destage().DestagedStream() - read)
			if n > len(buf) {
				n = len(buf)
			}
			if _, err := l.XPread(p, buf[:n]); err != nil {
				fmt.Println("  tail read:", err)
				return
			}
			read += int64(n)
			if err := follower.Feed(buf[:n]); err != nil {
				fmt.Println("  replay:", err)
				return
			}
		}
	})
	env.RunUntil(env.Now() + 5*time.Second)
	fmt.Printf("  primary committed %d transactions; replica replayed %d\n", commits, follower.Transactions())
	fmt.Printf("  state fingerprints match: %v\n", eng.Fingerprint() == follower.Engine().Fingerprint())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
