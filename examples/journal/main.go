// Journal: the paper's §7.2 non-database use case — a journaled
// file-system commit path (ext4/JBD2-style) using the X-SSD fast side as
// its journal area. With replication off, the CMB acts as a low-latency
// append region with precise crash semantics; the journal's checkpointing
// corresponds to the device's automatic destaging.
//
// The example also exercises the §5.2 advanced API: each journal
// transaction allocates a fast-side area, fills its blocks in arbitrary
// order (as parallel flushers would) and frees it, which makes the area
// destage-eligible as a unit.
package main

import (
	"encoding/binary"
	"fmt"
	"time"

	"xssd"
)

// journalBlock is a fixed-size journal record (a metadata block image).
const journalBlock = 512

func main() {
	sys := xssd.NewSystem(21)
	dev, err := sys.NewDevice(xssd.DeviceOptions{
		Name:    "jbd",
		Backing: xssd.SRAM,
		// Opt into the multi-queue host interface: four SQ/CQ pairs with
		// eight commands in flight each, completion interrupts coalesced
		// four at a time (or every 8 µs, whichever comes first). Leaving
		// Queues nil keeps the classic single-pair interface.
		Queues: &xssd.QueueOptions{Pairs: 4, Depth: 8, CoalesceOps: 4, CoalesceTime: 8 * time.Microsecond},
	})
	if err != nil {
		panic(err)
	}

	sys.Run(func(p *xssd.Proc) {
		log := dev.OpenLog(p)

		// Commit three journal transactions, each with a handful of
		// metadata blocks written out of order into an allocated area.
		var journalled int64
		for txn := 1; txn <= 3; txn++ {
			blocks := 2 + txn // growing transactions
			size := blocks * journalBlock
			start, err := log.Alloc(p, size)
			if err != nil {
				panic(err)
			}
			// Parallel flushers fill the area back to front.
			for b := blocks - 1; b >= 0; b-- {
				block := make([]byte, journalBlock)
				binary.LittleEndian.PutUint32(block[0:4], uint32(txn))
				binary.LittleEndian.PutUint32(block[4:8], uint32(b))
				copy(block[8:], fmt.Sprintf("inode-update tx=%d block=%d", txn, b))
				log.WriteAt(p, start+int64(b*journalBlock), block)
			}
			// Commit record: freeing the area seals the transaction and
			// lets the device destage (checkpoint) it.
			if err := log.Free(p, start); err != nil {
				panic(err)
			}
			journalled += int64(size)
			fmt.Printf("t=%-12v journal txn %d committed: %d blocks at offset %d\n",
				p.Now(), txn, blocks, start)
		}

		// Wait for the device to checkpoint everything to flash.
		for dev.Stats().Destage.Stream < journalled {
			p.Sleep(1 << 20) // ~1ms
		}
		st := dev.Stats().Destage
		fmt.Printf("t=%-12v checkpoint complete: %d bytes destaged in %d pages\n",
			p.Now(), st.Stream, st.Pages)

		// Crash: whatever the journal had committed survives as a
		// gap-free prefix (precise crash semantics, §4.1).
		dev.InjectPowerLoss()
	})
	sys.RunFor(1 << 28) // let the drain finish
	fmt.Printf("post-crash drain complete: %v\n", dev.Drained())
}
