package xssd

import (
	"bytes"
	"testing"
	"time"
)

func TestPublicQuickstartPath(t *testing.T) {
	sys := NewSystem(1)
	dev := sys.NewDevice(DeviceOptions{Name: "q", Backing: SRAM})
	msg := []byte("public API commit record")
	var got []byte
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		off := log.Pwrite(p, msg)
		if off != 0 {
			t.Errorf("first write at offset %d", off)
		}
		if err := log.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if log.Written() != int64(len(msg)) {
			t.Errorf("written = %d", log.Written())
		}
		reader := dev.OpenLog(p)
		buf := make([]byte, len(msg))
		if _, err := reader.Pread(p, buf); err != nil {
			t.Errorf("pread: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("tail read %q, want %q", got, msg)
	}
}

func TestPublicClusterReplication(t *testing.T) {
	sys := NewSystem(2)
	a := sys.NewDevice(DeviceOptions{Name: "a"})
	b := sys.NewDevice(DeviceOptions{Name: "b"})
	cluster, err := sys.NewCluster(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		if err := cluster.Setup(p, 0, Eager); err != nil {
			t.Fatalf("setup: %v", err)
		}
		log := a.OpenLog(p)
		log.Pwrite(p, make([]byte, 2048))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		// Eager fsync returned: the secondary must be caught up.
		for i, lag := range cluster.Lag() {
			if lag != 0 {
				t.Errorf("secondary %d lag = %d after eager fsync", i, lag)
			}
		}
	})
	if cluster.PrimaryName() != "a" {
		t.Fatalf("primary = %q", cluster.PrimaryName())
	}
}

func TestPublicFailover(t *testing.T) {
	sys := NewSystem(3)
	a := sys.NewDevice(DeviceOptions{Name: "a"})
	b := sys.NewDevice(DeviceOptions{Name: "b"})
	cluster, err := sys.NewCluster(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		if err := cluster.Setup(p, 0, Eager); err != nil {
			t.Fatalf("setup: %v", err)
		}
		log := a.OpenLog(p)
		log.Pwrite(p, make([]byte, 512))
		log.Fsync(p)
		a.InjectPowerLoss()
		if err := cluster.Promote(p, 1); err != nil {
			t.Fatalf("promote: %v", err)
		}
	})
	if cluster.PrimaryName() != "b" {
		t.Fatalf("primary after failover = %q", cluster.PrimaryName())
	}
	sys.RunFor(200 * time.Millisecond)
	if !a.Drained() {
		t.Fatal("dead primary did not drain")
	}
}

func TestPublicAdvancedAPI(t *testing.T) {
	sys := NewSystem(4)
	dev := sys.NewDevice(DeviceOptions{Name: "adv"})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		start, err := log.Alloc(p, 128)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		log.WriteAt(p, start+64, bytes.Repeat([]byte{2}, 64))
		log.WriteAt(p, start, bytes.Repeat([]byte{1}, 64))
		if err := log.Free(p, start); err != nil {
			t.Fatalf("free: %v", err)
		}
		// After free, the data destages; the tail reader sees it in order.
		reader := dev.OpenLog(p)
		buf := make([]byte, 128)
		if _, err := reader.Pread(p, buf); err != nil {
			t.Fatalf("pread: %v", err)
		}
		if buf[0] != 1 || buf[64] != 2 {
			t.Fatal("allocation contents out of order")
		}
	})
}

func TestPublicCrashConsistency(t *testing.T) {
	sys := NewSystem(5)
	dev := sys.NewDevice(DeviceOptions{Name: "crash"})
	var written int64
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, make([]byte, 3000))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		written = log.Written()
		dev.InjectPowerLoss()
	})
	sys.RunFor(200 * time.Millisecond)
	if !dev.Drained() {
		t.Fatal("device did not drain after power loss")
	}
	if got := dev.Raw().Destage().DestagedStream(); got < written {
		t.Fatalf("destaged %d < acked %d: durability violated", got, written)
	}
}

func TestPublicDestagePolicyOption(t *testing.T) {
	sys := NewSystem(6)
	dev := sys.NewDevice(DeviceOptions{Name: "pol", Policy: ConventionalPriority})
	if dev.Raw().Scheduler().Policy() != ConventionalPriority {
		t.Fatal("policy option not applied")
	}
}

func TestPublicDRAMBacking(t *testing.T) {
	sys := NewSystem(7)
	dev := sys.NewDevice(DeviceOptions{Name: "dram", Backing: DRAM})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, make([]byte, 4096))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync on DRAM backing: %v", err)
		}
	})
}

func TestSystemClockAdvances(t *testing.T) {
	sys := NewSystem(8)
	if sys.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	sys.RunFor(5 * time.Millisecond)
	if sys.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", sys.Now())
	}
}

func TestPublicVirtualFunctions(t *testing.T) {
	sys := NewSystem(9)
	dev := sys.NewDevice(DeviceOptions{Name: "shared"})
	vf1, err := dev.NewVF("tenant1", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	vf2, err := dev.NewVF("tenant2", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		l1 := vf1.OpenLog(p)
		l2 := vf2.OpenLog(p)
		l1.Pwrite(p, []byte("tenant one data"))
		l2.Pwrite(p, []byte("tenant two")) // independent stream offsets
		if err := l1.Fsync(p); err != nil {
			t.Errorf("vf1 fsync: %v", err)
		}
		if err := l2.Fsync(p); err != nil {
			t.Errorf("vf2 fsync: %v", err)
		}
		buf := make([]byte, 15)
		r := vf1.OpenLog(p)
		if _, err := r.Pread(p, buf); err != nil {
			t.Errorf("vf1 pread: %v", err)
		}
		if string(buf) != "tenant one data" {
			t.Errorf("vf1 read %q", buf)
		}
	})
	if vf1.Name() != "shared/tenant1" {
		t.Fatalf("vf name = %q", vf1.Name())
	}
}

func TestPublicTracing(t *testing.T) {
	sys := NewSystem(10)
	dev := sys.NewDevice(DeviceOptions{Name: "tr"})
	tr := dev.EnableTracing(128)
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, []byte("traced write"))
		log.Fsync(p)
	})
	if tr.Total() == 0 {
		t.Fatal("no events traced")
	}
}
