package xssd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"xssd/internal/nand"
)

func TestPublicQuickstartPath(t *testing.T) {
	sys := NewSystem(1)
	dev := sys.MustDevice(DeviceOptions{Name: "q", Backing: SRAM})
	msg := []byte("public API commit record")
	var got []byte
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		off := log.Pwrite(p, msg)
		if off != 0 {
			t.Errorf("first write at offset %d", off)
		}
		if err := log.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
		if log.Written() != int64(len(msg)) {
			t.Errorf("written = %d", log.Written())
		}
		reader := dev.OpenLog(p)
		buf := make([]byte, len(msg))
		if _, err := reader.Pread(p, buf); err != nil {
			t.Errorf("pread: %v", err)
		}
		got = buf
	})
	if !bytes.Equal(got, msg) {
		t.Fatalf("tail read %q, want %q", got, msg)
	}
}

func TestPublicClusterReplication(t *testing.T) {
	sys := NewSystem(2)
	a := sys.MustDevice(DeviceOptions{Name: "a"})
	b := sys.MustDevice(DeviceOptions{Name: "b"})
	cluster, err := sys.NewCluster(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		if err := cluster.Setup(p, 0, Eager); err != nil {
			t.Fatalf("setup: %v", err)
		}
		log := a.OpenLog(p)
		log.Pwrite(p, make([]byte, 2048))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		// Eager fsync returned: the secondary must be caught up.
		for i, lag := range cluster.Lag() {
			if lag != 0 {
				t.Errorf("secondary %d lag = %d after eager fsync", i, lag)
			}
		}
	})
	if cluster.PrimaryName() != "a" {
		t.Fatalf("primary = %q", cluster.PrimaryName())
	}
}

func TestPublicFailover(t *testing.T) {
	sys := NewSystem(3)
	a := sys.MustDevice(DeviceOptions{Name: "a"})
	b := sys.MustDevice(DeviceOptions{Name: "b"})
	cluster, err := sys.NewCluster(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		if err := cluster.Setup(p, 0, Eager); err != nil {
			t.Fatalf("setup: %v", err)
		}
		log := a.OpenLog(p)
		log.Pwrite(p, make([]byte, 512))
		log.Fsync(p)
		a.InjectPowerLoss()
		if err := cluster.Promote(p, 1); err != nil {
			t.Fatalf("promote: %v", err)
		}
	})
	if cluster.PrimaryName() != "b" {
		t.Fatalf("primary after failover = %q", cluster.PrimaryName())
	}
	sys.RunFor(200 * time.Millisecond)
	if !a.Drained() {
		t.Fatal("dead primary did not drain")
	}
}

func TestPublicAdvancedAPI(t *testing.T) {
	sys := NewSystem(4)
	dev := sys.MustDevice(DeviceOptions{Name: "adv"})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		start, err := log.Alloc(p, 128)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		log.WriteAt(p, start+64, bytes.Repeat([]byte{2}, 64))
		log.WriteAt(p, start, bytes.Repeat([]byte{1}, 64))
		if err := log.Free(p, start); err != nil {
			t.Fatalf("free: %v", err)
		}
		// After free, the data destages; the tail reader sees it in order.
		reader := dev.OpenLog(p)
		buf := make([]byte, 128)
		if _, err := reader.Pread(p, buf); err != nil {
			t.Fatalf("pread: %v", err)
		}
		if buf[0] != 1 || buf[64] != 2 {
			t.Fatal("allocation contents out of order")
		}
	})
}

func TestPublicCrashConsistency(t *testing.T) {
	sys := NewSystem(5)
	dev := sys.MustDevice(DeviceOptions{Name: "crash"})
	var written int64
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, make([]byte, 3000))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		written = log.Written()
		dev.InjectPowerLoss()
	})
	sys.RunFor(200 * time.Millisecond)
	if !dev.Drained() {
		t.Fatal("device did not drain after power loss")
	}
	if got := dev.Stats().Destage.Stream; got < written {
		t.Fatalf("destaged %d < acked %d: durability violated", got, written)
	}
}

func TestPublicDestagePolicyOption(t *testing.T) {
	sys := NewSystem(6)
	dev := sys.MustDevice(DeviceOptions{Name: "pol", Policy: ConventionalPriority})
	if dev.Stats().Sched.Policy != ConventionalPriority.String() {
		t.Fatal("policy option not applied")
	}
}

func TestPublicDRAMBacking(t *testing.T) {
	sys := NewSystem(7)
	dev := sys.MustDevice(DeviceOptions{Name: "dram", Backing: DRAM})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, make([]byte, 4096))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync on DRAM backing: %v", err)
		}
	})
}

func TestSystemClockAdvances(t *testing.T) {
	sys := NewSystem(8)
	if sys.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	sys.RunFor(5 * time.Millisecond)
	if sys.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", sys.Now())
	}
}

func TestPublicVirtualFunctions(t *testing.T) {
	sys := NewSystem(9)
	dev := sys.MustDevice(DeviceOptions{Name: "shared"})
	vf1, err := dev.NewVF("tenant1", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	vf2, err := dev.NewVF("tenant2", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		l1 := vf1.OpenLog(p)
		l2 := vf2.OpenLog(p)
		l1.Pwrite(p, []byte("tenant one data"))
		l2.Pwrite(p, []byte("tenant two")) // independent stream offsets
		if err := l1.Fsync(p); err != nil {
			t.Errorf("vf1 fsync: %v", err)
		}
		if err := l2.Fsync(p); err != nil {
			t.Errorf("vf2 fsync: %v", err)
		}
		buf := make([]byte, 15)
		r := vf1.OpenLog(p)
		if _, err := r.Pread(p, buf); err != nil {
			t.Errorf("vf1 pread: %v", err)
		}
		if string(buf) != "tenant one data" {
			t.Errorf("vf1 read %q", buf)
		}
	})
	if vf1.Name() != "shared/tenant1" {
		t.Fatalf("vf name = %q", vf1.Name())
	}
}

func TestPublicTracing(t *testing.T) {
	sys := NewSystem(10)
	dev := sys.MustDevice(DeviceOptions{Name: "tr"})
	tr := dev.EnableTracing(128)
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, []byte("traced write"))
		log.Fsync(p)
	})
	if tr.Total() == 0 {
		t.Fatal("no events traced")
	}
}

func TestNewDeviceValidation(t *testing.T) {
	sys := NewSystem(11)
	cases := []struct {
		name string
		opts DeviceOptions
	}{
		{"empty name", DeviceOptions{}},
		{"negative queue", DeviceOptions{Name: "d", QueueSize: -4096}},
		{"odd queue", DeviceOptions{Name: "d", QueueSize: 4097}},
		{"zero geometry", DeviceOptions{Name: "d", Geometry: &nand.Geometry{Channels: 8}}},
		{"negative shadow period", DeviceOptions{Name: "d", ShadowUpdatePeriod: -time.Microsecond}},
	}
	for _, c := range cases {
		d, err := sys.NewDevice(c.opts)
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", c.name, err)
		}
		if d != nil {
			t.Errorf("%s: returned a device alongside the error", c.name)
		}
	}
	if _, err := sys.NewDevice(DeviceOptions{Name: "ok", QueueSize: 8192}); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
}

func TestPublicTypedStats(t *testing.T) {
	sys := NewSystem(12)
	dev := sys.MustDevice(DeviceOptions{Name: "st"})
	vf, err := dev.NewVF("vf0", 32<<10, 4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		log := sys.OpenLog(p, dev) // Device as LogTarget
		log.Pwrite(p, make([]byte, 4096))
		if err := log.Fsync(p); err != nil {
			t.Fatalf("fsync: %v", err)
		}
		vlog := sys.OpenLog(p, vf) // VF as LogTarget
		vlog.Pwrite(p, []byte("vf data"))
		if err := vlog.Fsync(p); err != nil {
			t.Fatalf("vf fsync: %v", err)
		}
	})
	sys.RunFor(10 * time.Millisecond)
	s := dev.Stats()
	if s.Name != "st" || s.CMB.BytesIn < 4096 || s.Destage.Stream < 4096 {
		t.Fatalf("device stats: %+v", s)
	}
	if len(s.VFs) != 1 || s.VFs[0].Name != "st/vf0" || s.VFs[0].CMB.BytesIn < 7 {
		t.Fatalf("vf stats via device: %+v", s.VFs)
	}
	if vs := vf.Stats(); vs.CMB.BytesIn != s.VFs[0].CMB.BytesIn {
		t.Fatalf("vf.Stats() disagrees with device view: %+v vs %+v", vs, s.VFs[0])
	}
	if s.NAND.Programs == 0 || s.Sched.Destage.Ops == 0 {
		t.Fatalf("nand/sched stats empty: %+v", s)
	}
}

func TestReserveScratchDisjoint(t *testing.T) {
	sys := NewSystem(13)
	a := sys.ReserveScratch(4096)
	b := sys.ReserveScratch(100)
	c := sys.ReserveScratch(4096)
	if a == 0 {
		t.Fatal("scratch allocator handed out offset 0")
	}
	if b < a+4096 || c < b+100 {
		t.Fatalf("scratch regions overlap: %d, %d, %d", a, b, c)
	}
}

// run drives a fixed workload and returns the encoded metrics snapshot.
func metricsRun(t *testing.T, seed int64) []byte {
	t.Helper()
	sys := NewSystem(seed)
	a := sys.MustDevice(DeviceOptions{Name: "a"})
	b := sys.MustDevice(DeviceOptions{Name: "b"})
	cluster, err := sys.NewCluster(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *Proc) {
		if err := cluster.Setup(p, 0, Eager); err != nil {
			t.Fatal(err)
		}
		log := a.OpenLog(p)
		// Write sizes depend on the seed so distinct seeds yield distinct
		// traffic (the simulation itself only draws randomness on demand).
		for i := 0; i < 32; i++ {
			log.Pwrite(p, make([]byte, 512+int(seed%7)*128))
			if err := log.Fsync(p); err != nil {
				t.Fatal(err)
			}
		}
	})
	sys.RunFor(20 * time.Millisecond)
	return sys.MetricsSnapshot().Encode()
}

func TestPublicMetricsDeterminism(t *testing.T) {
	one := metricsRun(t, 42)
	two := metricsRun(t, 42)
	if !bytes.Equal(one, two) {
		t.Fatal("same-seed runs produced different metrics snapshots")
	}
	if bytes.Equal(one, metricsRun(t, 43)) {
		t.Fatal("different seeds produced identical snapshots (suspicious)")
	}
}

func TestWriteMetricsFormats(t *testing.T) {
	sys := NewSystem(14)
	dev := sys.MustDevice(DeviceOptions{Name: "m"})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		log.Pwrite(p, make([]byte, 512))
		log.Fsync(p)
	})
	var j, txt bytes.Buffer
	if err := sys.WriteMetrics(&j, MetricsJSON); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteMetrics(&txt, MetricsText); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(j.Bytes(), []byte(`"m/cmb/bytes_in"`)) {
		t.Fatalf("JSON snapshot missing device counters: %s", j.String())
	}
	if !bytes.Contains(txt.Bytes(), []byte("m/cmb/bytes_in")) {
		t.Fatal("text snapshot missing device counters")
	}
	if err := sys.WriteMetrics(&j, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestQueueOptionsValidation(t *testing.T) {
	sys := NewSystem(13)
	cases := []struct {
		name string
		q    QueueOptions
	}{
		{"negative pairs", QueueOptions{Pairs: -1}},
		{"too many pairs", QueueOptions{Pairs: 257}},
		{"negative depth", QueueOptions{Pairs: 4, Depth: -1}},
		{"huge depth", QueueOptions{Pairs: 4, Depth: 1 << 17}},
		{"negative coalesce ops", QueueOptions{Pairs: 4, CoalesceOps: -2}},
		{"huge coalesce ops", QueueOptions{Pairs: 4, CoalesceOps: 5000, CoalesceTime: time.Microsecond}},
		{"negative coalesce time", QueueOptions{Pairs: 4, CoalesceTime: -time.Microsecond}},
		{"ops without time bound", QueueOptions{Pairs: 4, CoalesceOps: 8}},
	}
	for _, c := range cases {
		q := c.q
		d, err := sys.NewDevice(DeviceOptions{Name: "d", Queues: &q})
		if !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", c.name, err)
		}
		if d != nil {
			t.Errorf("%s: returned a device alongside the error", c.name)
		}
	}
	ok := &QueueOptions{Pairs: 4, Depth: 16, CoalesceOps: 4, CoalesceTime: 8 * time.Microsecond}
	if _, err := sys.NewDevice(DeviceOptions{Name: "mq", Queues: ok}); err != nil {
		t.Fatalf("valid queue options rejected: %v", err)
	}
}

func TestPublicAsyncSubmitPollWait(t *testing.T) {
	sys := NewSystem(14)
	dev := sys.MustDevice(DeviceOptions{
		Name:    "async",
		Backing: SRAM,
		Queues:  &QueueOptions{Pairs: 2, Depth: 8},
	})
	sys.Run(func(p *Proc) {
		log := dev.OpenLog(p)
		// Keep several records in flight, then wait on the newest token:
		// the total order makes every earlier one durable too.
		var toks []SyncToken
		for i := 0; i < 5; i++ {
			toks = append(toks, log.Submit(p, []byte("async commit record")))
		}
		if tok := log.SyncToken(); tok != toks[4] {
			t.Errorf("SyncToken() = %d, want the last Submit's token %d", tok, toks[4])
		}
		if err := log.Wait(p, toks[4]); err != nil {
			t.Errorf("wait: %v", err)
		}
		for i, tok := range toks {
			if !log.Poll(p, tok) {
				t.Errorf("token %d (%d) not durable after waiting on the newest", i, tok)
			}
		}
		// The blocking surface still works on the same handle.
		log.Pwrite(p, []byte("blocking record"))
		if err := log.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
	})
	if st := dev.Stats(); len(st.HostQueues) != 2 {
		t.Fatalf("device stats list %d host queues, want 2", len(st.HostQueues))
	}
}

func TestDefaultOptionsKeepClassicSingleQueue(t *testing.T) {
	sys := NewSystem(15)
	dev := sys.MustDevice(DeviceOptions{Name: "classic"})
	if st := dev.Stats(); len(st.HostQueues) != 0 {
		t.Fatalf("classic device reports %d host-queue entries, want none", len(st.HostQueues))
	}
}
