// Benchmarks: one testing.B target per table/figure of the paper's
// evaluation (§6), plus the ablations. Each benchmark iteration runs one
// deterministic simulation cell and reports the experiment's own metric
// (virtual-time throughput or latency) alongside Go's wall-clock numbers.
//
// Regenerate the full figures with `go run ./cmd/xbench -all`; these
// benchmark targets exist so `go test -bench=.` exercises every
// experiment path and reports its headline measurement.
package xssd

import (
	"fmt"
	"testing"
	"time"

	"xssd/internal/bench"
	"xssd/internal/pm"
	"xssd/internal/sched"
)

// BenchmarkFig09LocalLogging measures TPC-C throughput and latency per
// logging setup at the paper's 8-worker point (Fig 9).
func BenchmarkFig09LocalLogging(b *testing.B) {
	for _, setup := range []string{"NoLog", "Memory", "Villars-SRAM", "Villars-DRAM", "NVMe"} {
		b.Run(setup, func(b *testing.B) {
			var lat time.Duration
			var ktps float64
			for i := 0; i < b.N; i++ {
				lat, ktps = bench.Fig09Cell(setup, 8)
			}
			b.ReportMetric(ktps, "ktxn/s")
			b.ReportMetric(float64(lat.Microseconds()), "txn-latency-µs")
		})
	}
}

// BenchmarkFig10WriteCombining measures fast-side intake throughput for
// the WC/UC × write-size grid's corner points (Fig 10).
func BenchmarkFig10WriteCombining(b *testing.B) {
	cases := []struct {
		name     string
		uncached bool
		size     int
	}{
		{"WC-8B", false, 8},
		{"WC-64B", false, 64},
		{"UC-8B", true, 8},
		{"UC-64B", true, 64},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				tput = bench.Fig10Cell(pm.SRAMSpec, c.uncached, c.size)
			}
			b.ReportMetric(tput/1e6, "MB/s")
		})
	}
}

// BenchmarkFig11QueueSize measures XPwrite+XFsync latency for the paper's
// recommended 32 KB queue against a cramped 4 KB one (Fig 11).
func BenchmarkFig11QueueSize(b *testing.B) {
	for _, q := range []int{4 << 10, 32 << 10} {
		b.Run(fmt.Sprintf("queue-%dKB", q>>10), func(b *testing.B) {
			var lat time.Duration
			var mbps float64
			for i := 0; i < b.N; i++ {
				lat, mbps = bench.Fig11Cell(q, 16<<10)
			}
			b.ReportMetric(float64(lat.Microseconds()), "flush-latency-µs")
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkFig12Destaging measures conventional-side protection under the
// two policies at the paper's worst contention point (Fig 12).
func BenchmarkFig12Destaging(b *testing.B) {
	for _, policy := range []sched.Policy{sched.Neutral, sched.ConventionalPriority} {
		b.Run(policy.String(), func(b *testing.B) {
			var conv, fast float64
			for i := 0; i < b.N; i++ {
				conv, fast = bench.Fig12Cell(policy, 0.60)
			}
			b.ReportMetric(conv*100, "conv-%bw")
			b.ReportMetric(fast*100, "fast-%bw")
		})
	}
}

// BenchmarkFig13ReplicationDelay measures the shadow-counter confirmation
// delay at the fastest and slowest update periods (Fig 13).
func BenchmarkFig13ReplicationDelay(b *testing.B) {
	for _, period := range []time.Duration{400 * time.Nanosecond, 1600 * time.Nanosecond} {
		b.Run(fmt.Sprintf("period-%dns", period.Nanoseconds()), func(b *testing.B) {
			var p50, max time.Duration
			var share float64
			for i := 0; i < b.N; i++ {
				c, s := bench.Fig13Cell(period)
				p50, max, share = c.P50, c.Max, s
			}
			b.ReportMetric(float64(p50.Nanoseconds())/1e3, "p50-delay-µs")
			b.ReportMetric(float64(max.Nanoseconds())/1e3, "max-delay-µs")
			b.ReportMetric(share, "update-bw-%")
		})
	}
}

// BenchmarkAblationCreditStrategy compares the §5.1 credit-check
// strategies end to end.
func BenchmarkAblationCreditStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationCredit()
	}
}

// BenchmarkAblationReplicationScheme compares eager/lazy/chain commit
// latency.
func BenchmarkAblationReplicationScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.AblationScheme()
	}
}
