// Command xbench regenerates the paper's evaluation figures (and the
// repository's ablation studies) from the simulated X-SSD stack.
//
// Usage:
//
//	xbench -list
//	xbench -fig 9            # one figure
//	xbench -exp fig12        # by name
//	xbench -all              # everything
//	xbench -chaos -seeds 20  # chaos sweep: fault plans vs invariants
//	xbench -chaos -shards 4 -seeds 10  # sharded sweep: cluster fault plans vs invariants incl. I8
//	xbench -chaos -paged -seeds 20  # paged sweep: B+tree store + fuzzy checkpoints, invariants incl. I9
//	xbench -failover -seeds 20  # failover sweep: primary kills vs takeover invariants
//
// Add -metrics out.json to any experiment run to also dump a per-cell
// metrics snapshot (canonical JSON, byte-identical across same-seed runs).
//
// Add -workers N to run the simulations on the parallel group engine with
// N quantum executors (0, the default, is the classic single-Env
// scheduler). Same-seed results are byte-identical for every N >= 1.
//
// Performance modes:
//
//	xbench -suite perf -workers 8 -o BENCH_PR7.json   # time one cell per figure + a chaos seed + the pargroup twins
//	xbench -suite shard -o BENCH_PR9.json  # sharded-cluster throughput scaling + remote-mix sweep + engine twins
//	xbench -compare baseline.json new.json # gate: fail on >15% events/sec regression or serial/parallel event drift
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"xssd/internal/bench"
	"xssd/internal/chaos"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (9-13)")
	exp := flag.String("exp", "", "experiment name (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment names")
	chaosRun := flag.Bool("chaos", false, "run the chaos sweep (randomized fault plans, invariants I1-I5)")
	failoverRun := flag.Bool("failover", false, "run the failover sweep (randomized primary kills, invariants I6-I7)")
	seeds := flag.Int("seeds", 20, "number of seeds for -chaos/-failover")
	shards := flag.Int("shards", 0, "with -chaos: run the sharded-cluster sweep with this many shards per seed (invariants I1-I5 + I8); 0 = classic single-primary sweep")
	paged := flag.Bool("paged", false, "with -chaos: store tables in B+tree pages destaged to the conventional side, with background fuzzy checkpoints (invariants I1-I5 + I9)")
	metricsOut := flag.String("metrics", "", "write per-cell metrics snapshots to this file as JSON")
	workers := flag.Int("workers", 0, "simulation engine: 0 = classic single-Env scheduler, n >= 1 = parallel group runner with n quantum executors (figures, sweeps, and the perf suite)")
	suite := flag.String("suite", "", "run a timed suite (\"perf\", \"latency\", or \"shard\")")
	out := flag.String("o", "BENCH_PR4.json", "output file for -suite perf/latency")
	compare := flag.Bool("compare", false, "compare two perf result files: -compare baseline.json new.json")
	tolerance := flag.Float64("tolerance", 0.15, "allowed events/sec regression fraction for -compare")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	gogc := flag.Int("gogc", 400, "GC target percentage (runtime/debug.SetGCPercent); simulations are short-lived and allocation-heavy, so trading heap headroom for fewer GC cycles is the right default here")
	flag.Parse()

	// Results are untouched by this: the engine runs on virtual time, so
	// collector pacing can never leak into event order or metrics.
	debug.SetGCPercent(*gogc)

	bench.SetEngineWorkers(*workers)

	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var capture *bench.Capture
	if *metricsOut != "" {
		capture = bench.StartCapture()
		defer bench.StopCapture()
	}

	switch {
	case *compare:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: xbench -compare baseline.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("compare: %s within %.0f%% of %s on every cell\n", flag.Arg(1), *tolerance*100, flag.Arg(0))
	case *suite == "perf":
		if err := runPerfSuite(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *suite == "latency":
		if err := runLatencySuite(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *suite == "shard":
		if err := runShardSuite(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *suite != "":
		fmt.Fprintf(os.Stderr, "xbench: unknown suite %q (\"perf\", \"latency\", or \"shard\")\n", *suite)
		os.Exit(2)
	case *chaosRun && *shards > 0:
		if err := chaos.SweepShard(os.Stdout, *seeds, *shards, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaosRun && *paged:
		if err := chaos.SweepPaged(os.Stdout, *seeds, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *chaosRun:
		if err := chaos.SweepWorkers(os.Stdout, *seeds, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *failoverRun:
		if err := chaos.SweepFailoverWorkers(os.Stdout, *seeds, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *list:
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
	case *all:
		for _, name := range bench.Experiments {
			if err := bench.Run(name, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *fig != 0:
		if err := bench.Run(fmt.Sprintf("fig%d", *fig), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *exp != "":
		if err := bench.Run(*exp, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if capture != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := capture.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: wrote %d cell snapshots to %s\n", capture.Len(), *metricsOut)
	}
}

// perfRepeatBelow: cells whose first run finishes faster than this are
// re-timed (best of three). Short cells are dominated by scheduler and
// timer noise, and the compare gate's 15% tolerance assumes the noise is
// smaller than that; best-of-N clips the one-sided slow tail.
const perfRepeatBelow = 2 * time.Second

// runPerfSuite times every perf cell against the wall clock and writes the
// canonical results file. Timing lives here, not in internal/bench: the
// simulation packages are virtual-time only (the simdeterminism analyzer
// enforces it), while a command may consult real clocks.
func runPerfSuite(path string) error {
	cells := bench.PerfCells()
	results := make([]bench.PerfResult, 0, len(cells))
	for _, c := range cells {
		best, err := timePerfCell(c)
		if err != nil {
			return fmt.Errorf("perf suite: %s: %w", c.Name, err)
		}
		for rep := 1; rep < 3 && best.WallNS < int64(perfRepeatBelow); rep++ {
			again, err := timePerfCell(c)
			if err != nil {
				return fmt.Errorf("perf suite: %s (rep %d): %w", c.Name, rep, err)
			}
			if again.Events != best.Events {
				return fmt.Errorf("perf suite: %s: event count drifted across repeats: %d vs %d",
					c.Name, again.Events, best.Events)
			}
			if again.WallNS < best.WallNS {
				best = again
			}
		}
		fmt.Printf("%-28s %10.0f events/s  (%d events, %v, %d allocs)\n",
			best.Bench, best.EventsPerSec, best.Events,
			time.Duration(best.WallNS).Round(time.Millisecond), best.Allocs)
		results = append(results, best)
	}
	if err := bench.WritePerfFile(path, results); err != nil {
		return err
	}
	fmt.Printf("perf: wrote %d cells to %s\n", len(results), path)
	return nil
}

// timePerfCell runs one cell once under the wall clock.
func timePerfCell(c bench.PerfCell) (bench.PerfResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	events, err := c.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return bench.PerfResult{}, err
	}
	r := bench.PerfResult{
		Bench:  c.Name,
		WallNS: wall.Nanoseconds(),
		Events: events,
		Allocs: int64(after.Mallocs - before.Mallocs),
	}
	if wall > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
	}
	return r, nil
}

// runLatencySuite runs the queue-depth × coalescing sweep and writes the
// canonical results file (BENCH_PR8.json). Quantiles are virtual time —
// deterministic — so the compare gate holds them to exact equality; wall
// time and events/sec are the same machine-dependent series the perf
// suite reports.
func runLatencySuite(path string) error {
	cells := bench.LatencyCells()
	results := make([]bench.PerfResult, 0, len(cells))
	for _, c := range cells {
		start := time.Now()
		m, err := c.Run()
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("latency suite: %s: %w", c.Name, err)
		}
		r := bench.PerfResult{
			Bench:  c.Name,
			WallNS: wall.Nanoseconds(),
			Events: m.Events,
			P50NS:  m.Lat.P50,
			P99NS:  m.Lat.P99,
			P999NS: m.Lat.P999,
		}
		if wall > 0 {
			r.EventsPerSec = float64(m.Events) / wall.Seconds()
		}
		fmt.Printf("%-24s p50 %-9v p99 %-9v p999 %-9v (%d ops, %d events, %v)\n",
			r.Bench, time.Duration(r.P50NS), time.Duration(r.P99NS), time.Duration(r.P999NS),
			m.Lat.N, r.Events, wall.Round(time.Millisecond))
		results = append(results, r)
	}
	if err := bench.WritePerfFile(path, results); err != nil {
		return err
	}
	fmt.Printf("latency: wrote %d cells to %s\n", len(results), path)
	return nil
}

// shardScalingFloor: the 4-shard cell must commit at least this multiple
// of the 1-shard cell's aggregate — the headline scaling claim of the
// sharded cluster, gated at generation time so a regressing tree cannot
// even produce a BENCH_PR9.json.
const shardScalingFloor = 3.0

// runShardSuite runs the sharded-cluster throughput cells and writes the
// canonical results file (BENCH_PR9.json). Event and commit counts are
// virtual time — deterministic — so the compare gate holds both to exact
// equality; the scaling gate additionally requires the 4-shard cell to
// commit at least 3x the 1-shard cell's transactions.
func runShardSuite(path string) error {
	cells := bench.ShardCells()
	results := make([]bench.PerfResult, 0, len(cells))
	for _, c := range cells {
		start := time.Now()
		m, err := c.Run()
		wall := time.Since(start)
		if err != nil {
			return fmt.Errorf("shard suite: %s: %w", c.Name, err)
		}
		r := bench.PerfResult{
			Bench:   c.Name,
			WallNS:  wall.Nanoseconds(),
			Events:  m.Events,
			Commits: m.Commits,
		}
		if wall > 0 {
			r.EventsPerSec = float64(m.Events) / wall.Seconds()
		}
		fmt.Printf("%-20s %6d commits  (%d events, %v)\n",
			r.Bench, r.Commits, r.Events, wall.Round(time.Millisecond))
		results = append(results, r)
	}
	if err := bench.CheckShardScaling(results, shardScalingFloor); err != nil {
		return err
	}
	if err := bench.WritePerfFile(path, results); err != nil {
		return err
	}
	fmt.Printf("shard: wrote %d cells to %s\n", len(results), path)
	return nil
}

// runCompare gates new against baseline with the given tolerance.
func runCompare(baselinePath, newPath string, tol float64) error {
	baseline, err := bench.ReadPerfFile(baselinePath)
	if err != nil {
		return err
	}
	current, err := bench.ReadPerfFile(newPath)
	if err != nil {
		return err
	}
	return bench.Compare(baseline, current, tol)
}
