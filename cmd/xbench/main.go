// Command xbench regenerates the paper's evaluation figures (and the
// repository's ablation studies) from the simulated X-SSD stack.
//
// Usage:
//
//	xbench -list
//	xbench -fig 9            # one figure
//	xbench -exp fig12        # by name
//	xbench -all              # everything
//	xbench -chaos -seeds 20  # chaos sweep: fault plans vs invariants
//
// Add -metrics out.json to any experiment run to also dump a per-cell
// metrics snapshot (canonical JSON, byte-identical across same-seed runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"xssd/internal/bench"
	"xssd/internal/chaos"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (9-13)")
	exp := flag.String("exp", "", "experiment name (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment names")
	chaosRun := flag.Bool("chaos", false, "run the chaos sweep (randomized fault plans, invariants I1-I5)")
	seeds := flag.Int("seeds", 20, "number of seeds for -chaos")
	metricsOut := flag.String("metrics", "", "write per-cell metrics snapshots to this file as JSON")
	flag.Parse()

	var capture *bench.Capture
	if *metricsOut != "" {
		capture = bench.StartCapture()
		defer bench.StopCapture()
	}

	switch {
	case *chaosRun:
		if err := chaos.Sweep(os.Stdout, *seeds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *list:
		for _, name := range bench.Experiments {
			fmt.Println(name)
		}
	case *all:
		for _, name := range bench.Experiments {
			if err := bench.Run(name, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case *fig != 0:
		if err := bench.Run(fmt.Sprintf("fig%d", *fig), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *exp != "":
		if err := bench.Run(*exp, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if capture != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := capture.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: wrote %d cell snapshots to %s\n", capture.Len(), *metricsOut)
	}
}
