// Command xvet runs the repository's custom static analyzers — the
// reproducibility and error-discipline contract of the simulator — over a
// set of package patterns, multichecker-style.
//
// Usage:
//
//	go run ./cmd/xvet [-disable name,name] [packages]
//
// With no arguments it checks ./... . It exits 0 when the code is clean,
// 3 when any analyzer reported a diagnostic, and 2 on a loading error
// (mirroring the golang.org/x/tools multichecker conventions).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xssd/internal/analysis"
	"xssd/internal/analysis/errdiscipline"
	"xssd/internal/analysis/maporder"
	"xssd/internal/analysis/paramdoc"
	"xssd/internal/analysis/simdeterminism"
)

var all = []*analysis.Analyzer{
	errdiscipline.Analyzer,
	maporder.Analyzer,
	paramdoc.Analyzer,
	simdeterminism.Analyzer,
}

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	list := flag.Bool("list", false, "print the available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xvet [-disable name,name] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fatal(fmt.Errorf("unknown analyzer %q in -disable (run xvet -list)", name))
			}
			disabled[name] = true
		}
	}
	var analyzers []*analysis.Analyzer
	for _, a := range all {
		if !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if len(diags) == 0 {
		return
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	os.Exit(3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvet:", err)
	os.Exit(2)
}
