// Command xvet runs the repository's custom static analyzers — the
// reproducibility and error-discipline contract of the simulator — over a
// set of package patterns, multichecker-style.
//
// Usage:
//
//	go run ./cmd/xvet [-disable name,name] [-json] [packages]
//
// With no arguments it checks ./... . It exits 0 when the code is clean,
// 3 when any analyzer reported a diagnostic, and 2 on a loading error
// (mirroring the golang.org/x/tools multichecker conventions). With
// -json, diagnostics are emitted as a JSON array of
// {file,line,col,analyzer,message} objects (sorted by position) for CI
// artifacts; the exit codes are unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"xssd/internal/analysis"
	"xssd/internal/analysis/bufownership"
	"xssd/internal/analysis/envaffinity"
	"xssd/internal/analysis/errdiscipline"
	"xssd/internal/analysis/hotpathalloc"
	"xssd/internal/analysis/maporder"
	"xssd/internal/analysis/paramdoc"
	"xssd/internal/analysis/simdeterminism"
)

var all = []*analysis.Analyzer{
	bufownership.Analyzer,
	envaffinity.Analyzer,
	errdiscipline.Analyzer,
	hotpathalloc.Analyzer,
	maporder.Analyzer,
	paramdoc.Analyzer,
	simdeterminism.Analyzer,
}

func main() {
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	list := flag.Bool("list", false, "print the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xvet [-disable name,name] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}

	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	disabled := map[string]bool{}
	for _, name := range strings.Split(*disable, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fatal(fmt.Errorf("unknown analyzer %q in -disable (run xvet -list)", name))
			}
			disabled[name] = true
		}
	}
	var analyzers []*analysis.Analyzer
	for _, a := range all {
		if !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	fset := pkgs[0].Fset
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			p := fset.Position(d.Pos)
			out = append(out, jsonDiag{File: p.Filename, Line: p.Line, Col: p.Column,
				Analyzer: d.Analyzer.Name, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		if len(diags) > 0 {
			os.Exit(3)
		}
		return
	}
	if len(diags) == 0 {
		return
	}
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	os.Exit(3)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xvet:", err)
	os.Exit(2)
}
