// Command tpccd runs a TPC-C benchmark session against the simulated
// X-SSD stack with a selectable logging path, printing the kind of
// per-setup summary a DBA would want before deciding where the WAL goes.
//
// Usage:
//
//	tpccd                        # default: Villars-SRAM, 8 workers, 200ms
//	tpccd -sink nvme -workers 4
//	tpccd -sink all
//	tpccd -metrics out.json      # also dump the run's metrics snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"xssd/internal/db"
	"xssd/internal/metrics"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/sim"
	"xssd/internal/tpcc"
	"xssd/internal/villars"
	"xssd/internal/wal"
)

// sinkMetrics pairs one sink's run with its metrics snapshot (the same
// shape the xbench -metrics capture emits per cell).
type sinkMetrics struct {
	Cell     string        `json:"cell"`
	Snapshot *obs.Snapshot `json:"snapshot"`
}

func main() {
	sink := flag.String("sink", "villars-sram", "log sink: villars-sram, villars-dram, memory, nvme, nolog, all")
	workers := flag.Int("workers", 8, "worker terminals")
	window := flag.Duration("window", 200*time.Millisecond, "virtual-time measurement window")
	warehouses := flag.Int("warehouses", 16, "TPC-C warehouses")
	metricsOut := flag.String("metrics", "", "write per-sink metrics snapshots to this file as JSON")
	flag.Parse()

	sinks := []string{*sink}
	if *sink == "all" {
		sinks = []string{"nolog", "memory", "villars-sram", "villars-dram", "nvme"}
	}
	fmt.Printf("TPC-C: %d warehouses, %d workers, %v virtual window\n", *warehouses, *workers, *window)
	fmt.Printf("%-14s %10s %12s %10s %8s\n", "sink", "ktxn/s", "avg latency", "p95", "aborts")
	var captured []sinkMetrics
	for _, s := range sinks {
		snap, err := run(s, *workers, *window, *warehouses)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		captured = append(captured, sinkMetrics{Cell: "tpccd/" + s, Snapshot: snap})
	}
	if *metricsOut != "" {
		b, err := json.Marshal(captured)
		if err == nil {
			err = os.WriteFile(*metricsOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: wrote %d sink snapshots to %s\n", len(captured), *metricsOut)
	}
}

func run(sinkName string, workers int, window time.Duration, warehouses int) (*obs.Snapshot, error) {
	env := sim.NewEnv(1)
	hostMem := pcie.NewHostMemory(1 << 21)

	var log *wal.Log
	mk := func(s wal.Sink) *wal.Log {
		return wal.NewLog(env, s, wal.Config{GroupBytes: 16 << 10, GroupTimeout: 5 * time.Millisecond})
	}
	switch sinkName {
	case "nolog":
	case "memory":
		log = mk(wal.NewMemorySink(env, pm.NVDIMMSpec))
	case "villars-sram", "villars-dram":
		cfg := villars.DefaultConfig("tpccd")
		if sinkName == "villars-dram" {
			cfg.Backing = pm.DRAMSpec
		}
		// Ring depth sized so the destage pipeline can stream at the
		// array's program bandwidth (cf. the fig10/fig9 notes on CMB
		// capacity as an FPGA-resource tradeoff).
		if cfg.Backing.Capacity < 2<<20 {
			cfg.Backing.Capacity = 2 << 20
		}
		cfg.CMBSize = cfg.Backing.Capacity
		dev := villars.New(env, cfg, hostMem)
		env.Go("open", func(p *sim.Proc) { log = mk(wal.NewVillarsSink(p, dev, sinkName)) })
		env.RunUntil(env.Now() + time.Millisecond)
	case "nvme":
		dev := villars.New(env, villars.DefaultConfig("tpccd"), hostMem)
		log = mk(wal.NewNVMeSink(dev, hostMem, 1<<20, 0, dev.FTL().LogicalPages()/2))
	default:
		return nil, fmt.Errorf("unknown sink %q", sinkName)
	}

	eng := db.New(env, log)
	cfg := tpcc.DefaultConfig()
	cfg.Warehouses = warehouses
	tpcc.Load(eng, cfg, 7)

	// ERMIA-style pipelined commit: workers run ahead of durability by a
	// bounded log-buffer amount; a tracker samples ack latency.
	var sample metrics.Sample
	type pending struct {
		lsn   int64
		start time.Duration
	}
	var fifo []pending
	arrived := env.NewSignal()
	if log != nil {
		env.Go("tracker", func(p *sim.Proc) {
			for {
				if len(fifo) == 0 {
					p.Wait(arrived)
					continue
				}
				e := fifo[0]
				fifo = fifo[1:]
				log.WaitDurable(p, e.lsn)
				sample.Add(p.Now() - e.start)
			}
		})
	}
	for w := 0; w < workers; w++ {
		w := w
		env.Go("terminal", func(p *sim.Proc) {
			client := tpcc.NewClient(eng, cfg, int64(w), w%cfg.Warehouses+1)
			for {
				if log != nil {
					log.WaitBacklog(p, 64<<10)
				}
				t0 := p.Now()
				p.Sleep(26 * time.Microsecond) // per-txn compute budget
				lsn, err := client.RunMixAsync(p)
				if err != nil {
					continue
				}
				if log == nil || lsn == 0 {
					sample.Add(p.Now() - t0)
					continue
				}
				fifo = append(fifo, pending{lsn: lsn, start: t0})
				arrived.Broadcast()
			}
		})
	}
	env.RunUntil(env.Now() + window)
	commits, aborts := eng.Stats()
	fmt.Printf("%-14s %10.1f %12v %10v %8d\n",
		sinkName,
		float64(commits)/window.Seconds()/1000,
		sample.Mean().Round(time.Microsecond),
		sample.Percentile(95).Round(time.Microsecond),
		aborts)
	return obs.For(env).Snapshot(), nil
}
