// Package xssd is the public API of this repository: a simulated
// implementation of the X-SSD storage architecture and its Villars
// reference device, from the SIGMOD 2022 paper "X-SSD: A Storage System
// with Native Support for Database Logging and Replication".
//
// An X-SSD couples a conventional NVMe flash SSD with a persistent-memory
// "fast side" reachable through the NVMe Controller Memory Buffer. The
// fast side is an append-only ring with three data-propagation services:
// in-order destaging to flash, mirroring to peer devices over NTB, and a
// credit counter for flow control and durability tracking. Databases use
// it through drop-in replacements for pwrite/fsync/pread.
//
// Everything runs inside a deterministic discrete-event simulation
// (virtual time); see DESIGN.md for the substitution map from the paper's
// hardware to the simulated components.
//
// A minimal session:
//
//	sys := xssd.NewSystem(1)
//	dev, err := sys.NewDevice(xssd.DeviceOptions{Name: "log0"})
//	if err != nil { ... }
//	sys.Run(func(p *xssd.Proc) {
//	    log := dev.OpenLog(p)
//	    log.Pwrite(p, []byte("commit record"))
//	    log.Fsync(p)
//	})
package xssd

import (
	"errors"
	"fmt"
	"io"
	"time"

	"xssd/internal/core"
	"xssd/internal/nand"
	"xssd/internal/obs"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/repl"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/trace"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Proc is a simulated process handle; all blocking API calls take one.
type Proc = sim.Proc

// Backing selects the fast side's persistent-memory class.
type Backing int

// Fast-side backing memories (paper §4.1 / §6).
const (
	// SRAM: small and fastest (FPGA BlockRAM class, 128 KB @ 4 GB/s).
	SRAM Backing = iota
	// DRAM: large, bandwidth shared with the device's data buffer
	// (DDR3 class, 128 MB @ 2 GB/s).
	DRAM
)

// DestagePolicy selects the storage-controller scheduling mode (§4.3).
type DestagePolicy = sched.Policy

// Destage scheduling policies.
const (
	Neutral              = sched.Neutral
	DestagePriority      = sched.DestagePriority
	ConventionalPriority = sched.ConventionalPriority
)

// ReplicationScheme selects how the credit counter combines replica
// progress (§4.2).
type ReplicationScheme = core.ReplicationScheme

// Replication schemes.
const (
	Eager = core.Eager
	Lazy  = core.Lazy
	Chain = core.Chain
)

// System is a simulation universe: a virtual clock plus any number of
// hosts and devices. All devices in one System can be clustered.
type System struct {
	env     *sim.Env
	hostMem *pcie.HostMemory
	devices []*Device
	scratch int64
}

// NewSystem creates an empty system with a deterministic seed.
func NewSystem(seed int64) *System {
	return &System{
		env:     sim.NewEnv(seed),
		hostMem: pcie.NewHostMemory(16 << 20),
	}
}

// Env exposes the underlying simulation environment for advanced use
// (custom processes, time control).
func (s *System) Env() *sim.Env { return s.env }

// Now returns the current virtual time.
func (s *System) Now() time.Duration { return s.env.Now() }

// Go starts fn as a simulated process.
func (s *System) Go(name string, fn func(p *Proc)) { s.env.Go(name, fn) }

// Run starts fn as a process and drives the simulation until fn returns
// (device background processes keep running and do not hold Run open).
func (s *System) Run(fn func(p *Proc)) {
	done := false
	s.env.Go("main", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for !done {
		s.env.RunFor(time.Millisecond)
	}
}

// RunFor drives the simulation for a span of virtual time.
func (s *System) RunFor(d time.Duration) { s.env.RunFor(d) }

// DeviceOptions configure a new Villars device. Zero values select the
// paper's defaults.
type DeviceOptions struct {
	Name    string
	Backing Backing
	// QueueSize is the CMB intake queue (default 32 KB, §6.3's best).
	QueueSize int
	// Policy is the initial destage scheduling policy.
	Policy DestagePolicy
	// Geometry overrides the NAND array shape (default: 8×8 dies of
	// 16 KB pages).
	Geometry *nand.Geometry
	// ShadowUpdatePeriod is the replica counter-report interval
	// (default 0.4 µs).
	ShadowUpdatePeriod time.Duration
	// Queues configures the multi-queue NVMe host interface. nil keeps
	// the classic single queue pair with interrupt-per-completion —
	// byte-identical to devices built before queue options existed.
	Queues *QueueOptions
}

// QueueOptions shape the device's NVMe host interface: how many per-core
// SQ/CQ pairs it exposes, how deep each queue's async in-flight window
// is, and how the completion side coalesces interrupts (fire after
// CoalesceOps completions or CoalesceTime, whichever comes first). Zero
// fields select defaults: 1 pair, depth 32, no coalescing.
type QueueOptions struct {
	// Pairs is the number of SQ/CQ pairs (per-core in a real deployment).
	Pairs int
	// Depth bounds async in-flight commands per queue.
	Depth int
	// CoalesceOps raises a completion interrupt only every N completions
	// (<= 1 means every completion).
	CoalesceOps int
	// CoalesceTime bounds how long a completion may wait for its batch;
	// required (> 0) when CoalesceOps > 1, so a final sub-batch cannot
	// strand without an interrupt.
	CoalesceTime time.Duration
}

// validate rejects queue shapes the model cannot honour, wrapping
// ErrBadOptions like the DeviceOptions checks.
func (q QueueOptions) validate() error {
	if q.Pairs < 0 || q.Pairs > 256 {
		return fmt.Errorf("%w: Queues.Pairs %d out of range [0,256]", ErrBadOptions, q.Pairs)
	}
	if q.Depth < 0 || q.Depth > 65536 {
		return fmt.Errorf("%w: Queues.Depth %d out of range [0,65536]", ErrBadOptions, q.Depth)
	}
	if q.CoalesceOps < 0 || q.CoalesceOps > 4096 {
		return fmt.Errorf("%w: Queues.CoalesceOps %d out of range [0,4096]", ErrBadOptions, q.CoalesceOps)
	}
	if q.CoalesceTime < 0 {
		return fmt.Errorf("%w: Queues.CoalesceTime %v is negative", ErrBadOptions, q.CoalesceTime)
	}
	if q.CoalesceOps > 1 && q.CoalesceTime == 0 {
		return fmt.Errorf("%w: Queues.CoalesceOps %d needs a CoalesceTime bound, or a final sub-batch would never interrupt", ErrBadOptions, q.CoalesceOps)
	}
	return nil
}

// ErrBadOptions reports rejected DeviceOptions. Concrete failures wrap it
// with the offending field, so callers match with errors.Is.
var ErrBadOptions = errors.New("xssd: invalid device options")

// validate rejects option values the device model cannot honour. The
// checks are deliberate API contract, not defensive programming: a
// mis-sized queue or an empty geometry would otherwise surface much later
// as a confusing simulation artifact.
func (opts DeviceOptions) validate() error {
	if opts.Name == "" {
		return fmt.Errorf("%w: Name must be non-empty (it prefixes the device's metric names)", ErrBadOptions)
	}
	if opts.QueueSize < 0 {
		return fmt.Errorf("%w: QueueSize %d is negative", ErrBadOptions, opts.QueueSize)
	}
	if opts.QueueSize%2 != 0 {
		// The intake queue is split into two ping-pong halves (§4.1).
		return fmt.Errorf("%w: QueueSize %d is odd; the intake queue is managed as two halves", ErrBadOptions, opts.QueueSize)
	}
	if g := opts.Geometry; g != nil {
		if g.Channels <= 0 || g.WaysPerChan <= 0 || g.BlocksPerDie <= 0 || g.PagesPerBlock <= 0 || g.PageSize <= 0 {
			return fmt.Errorf("%w: Geometry %+v has a zero or negative dimension", ErrBadOptions, *g)
		}
	}
	if opts.ShadowUpdatePeriod < 0 {
		return fmt.Errorf("%w: ShadowUpdatePeriod %v is negative", ErrBadOptions, opts.ShadowUpdatePeriod)
	}
	if opts.Queues != nil {
		if err := opts.Queues.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Device is one simulated Villars X-SSD attached to the system's host.
type Device struct {
	sys *System
	dev *villars.Device
}

// NewDevice validates opts, then creates and attaches a device. Rejected
// options (negative or odd QueueSize, a Geometry with a zero dimension,
// an empty Name) return an error wrapping ErrBadOptions.
func (s *System) NewDevice(opts DeviceOptions) (*Device, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	cfg := villars.DefaultConfig(opts.Name)
	if opts.Backing == DRAM {
		cfg.Backing = pm.DRAMSpec
	} else {
		cfg.Backing = pm.SRAMSpec
	}
	if opts.QueueSize > 0 {
		cfg.QueueSize = opts.QueueSize
	}
	cfg.Policy = opts.Policy
	if opts.Geometry != nil {
		cfg.Geometry = *opts.Geometry
	} else {
		cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	}
	if opts.ShadowUpdatePeriod > 0 {
		cfg.ShadowUpdatePeriod = opts.ShadowUpdatePeriod
	}
	if q := opts.Queues; q != nil {
		cfg.HostQueues = q.Pairs
		if cfg.HostQueues == 0 {
			cfg.HostQueues = 1
		}
		cfg.HostQueueDepth = q.Depth
		cfg.CoalesceOps = q.CoalesceOps
		cfg.CoalesceTime = q.CoalesceTime
	}
	d := &Device{sys: s, dev: villars.New(s.env, cfg, s.hostMem)}
	s.devices = append(s.devices, d)
	return d, nil
}

// MustDevice is NewDevice for tests and examples with known-good options;
// it panics on a validation error.
func (s *System) MustDevice(opts DeviceOptions) *Device {
	d, err := s.NewDevice(opts)
	if err != nil {
		panic(err)
	}
	return d
}

// Raw exposes the underlying device model for fault injection only
// (power-loss scenarios, fault plans, chaos tests). For statistics use
// Stats or System.MetricsSnapshot — telemetry read through Raw is
// unsupported and may move without notice.
func (d *Device) Raw() *villars.Device { return d.dev }

// Stats returns the device's typed telemetry snapshot.
func (d *Device) Stats() DeviceStats { return d.dev.Stats() }

// Name returns the device name.
func (d *Device) Name() string { return d.dev.Name() }

// InjectPowerLoss simulates a sudden power interruption; the device
// drains its fast side on supercapacitor energy (crash protocol, §4.1).
func (d *Device) InjectPowerLoss() { d.dev.InjectPowerLoss() }

// Drained reports whether the post-power-loss drain has finished.
func (d *Device) Drained() bool { return d.dev.Drained() }

// SetReplicationScheme selects the counter combination reported to hosts.
func (d *Device) SetReplicationScheme(s ReplicationScheme) {
	d.dev.Transport().SetScheme(s)
}

// VF is a virtual function: an independent fast side on a shared device
// (paper §7.2). Each VF has its own ring, credit counter, and destage
// range — one device can serve several databases, or give each log-writer
// thread a private flow-control domain (§7.1).
type VF struct {
	sys *System
	vf  *villars.VirtualFunction
}

// NewVF carves a virtual fast side out of the device.
func (d *Device) NewVF(name string, cmbSize int64, queueSize int, destageLBAs int64) (*VF, error) {
	vf, err := d.dev.CreateVF(name, cmbSize, queueSize, destageLBAs)
	if err != nil {
		return nil, err
	}
	return &VF{sys: d.sys, vf: vf}, nil
}

// Name returns the VF's qualified name.
func (v *VF) Name() string { return v.vf.Name() }

// Stats returns the VF's typed telemetry snapshot.
func (v *VF) Stats() VFStats { return v.vf.Stats() }

// OpenLog maps the VF's fast side for this process. Equivalent to
// System.OpenLog(p, v).
func (v *VF) OpenLog(p *Proc) *Log { return v.sys.OpenLog(p, v) }

func (v *VF) endpoint() xapi.Endpoint { return v.vf }
func (v *VF) system() *System         { return v.sys }

// EnableTracing attaches an event tracer to the device, retaining the
// last capacity events.
func (d *Device) EnableTracing(capacity int) *trace.Tracer {
	return d.dev.EnableTracing(capacity)
}

// Log is the drop-in logging handle (paper §5.1): Pwrite/Fsync/Pread plus
// the §5.2 Alloc/Free advanced API. One Log models one mapped writer
// context (a core); open one per simulated worker.
type Log struct {
	l *xapi.Logger
}

// LogTarget is anything a Log can be opened on: a whole Device or one of
// its virtual functions. Both expose a fast side with its own credit
// counter and destage range; the xapi layer treats them identically.
type LogTarget interface {
	Name() string
	// endpoint and system keep the interface closed: only Device and VF
	// can satisfy it.
	endpoint() xapi.Endpoint
	system() *System
}

// logScratchSize is the host scratch reserved per opened Log: XPread DMAs
// destage-ring pages into it, so it must hold at least one flash page
// (16 KB default) — 64 KB leaves headroom for custom geometries.
const logScratchSize = 64 << 10

// ReserveScratch reserves size bytes of host scratch memory and returns
// the region's base offset. The allocator is a simple bump pointer over
// the System's host memory: regions are never freed or reused, offsets
// are deterministic (they depend only on the reservation order), and
// offset 0 is never handed out so applications can use low host memory
// for their own buffers without colliding with scratch DMA.
func (s *System) ReserveScratch(size int64) int64 {
	if s.scratch == 0 {
		s.scratch = logScratchSize // keep low host memory for the application
	}
	base := s.scratch
	s.scratch += size
	return base
}

// OpenLog maps t's fast side for the calling process, reserving scratch
// host memory for its tail reads.
func (s *System) OpenLog(p *Proc, t LogTarget) *Log {
	return &Log{l: xapi.Open(p, t.endpoint(), xapi.Options{
		HostMem: s.hostMem,
		Scratch: s.ReserveScratch(logScratchSize),
	})}
}

// OpenLog maps the device's fast side for this process. Equivalent to
// System.OpenLog(p, d).
func (d *Device) OpenLog(p *Proc) *Log { return d.sys.OpenLog(p, d) }

func (d *Device) endpoint() xapi.Endpoint { return d.dev }
func (d *Device) system() *System         { return d.sys }

// Pwrite appends buf to the log (x_pwrite): the copy is paced by the
// device's credit counter and returns once the data is on the wire.
// The returned offset is the byte position in the log stream.
func (g *Log) Pwrite(p *Proc, buf []byte) int64 { return g.l.XPwrite(p, buf) }

// Fsync blocks until everything written through this handle is durable
// under the device's replication scheme (x_fsync).
func (g *Log) Fsync(p *Proc) error { return g.l.XFsync(p) }

// Pread fills buf with the next adjacent bytes of the destaged log tail
// (x_pread's tail-read semantics), blocking until enough data reaches the
// conventional side. Returns the stream offset of buf[0].
func (g *Log) Pread(p *Proc, buf []byte) (int64, error) { return g.l.XPread(p, buf) }

// Alloc reserves a fast-side area for random-order writes (x_alloc).
func (g *Log) Alloc(p *Proc, size int) (int64, error) { return g.l.XAlloc(p, size) }

// WriteAt stores into an allocated area at the given stream offset.
func (g *Log) WriteAt(p *Proc, off int64, data []byte) { g.l.XWriteAt(p, off, data) }

// Free releases an allocated area, making it destage-eligible (x_free).
func (g *Log) Free(p *Proc, start int64) error { return g.l.XFree(p, start) }

// Written returns total bytes issued through this handle.
func (g *Log) Written() int64 { return g.l.Written() }

// SyncToken is an async durability handle: everything the log issued up
// to the token is durable once Poll reports true (or Wait returns).
// Tokens are totally ordered; waiting on a later token covers every
// earlier one.
type SyncToken = xapi.Token

// Submit appends buf like Pwrite but hands back a SyncToken instead of
// implying a later Fsync — the async half of the API. The copy itself is
// still credit-paced; only the durability wait is deferred, so a worker
// can keep many submissions in flight and Poll (or Wait) when it needs
// the acknowledgement.
func (g *Log) Submit(p *Proc, buf []byte) SyncToken { return g.l.XSubmit(p, buf) }

// SyncToken returns a token covering everything issued so far through
// this handle — "an Fsync would wait for exactly this".
func (g *Log) SyncToken() SyncToken { return g.l.XToken() }

// Poll reports whether tok is durable, spending at most one credit
// register read (one PCIe round trip). It never blocks.
func (g *Log) Poll(p *Proc, tok SyncToken) bool { return g.l.XPoll(p, tok) }

// Wait blocks until tok is durable — Fsync targeted at a token.
func (g *Log) Wait(p *Proc, tok SyncToken) error { return g.l.XWait(p, tok) }

// Cluster is a replication group of devices (§4.2): one primary mirrors
// its fast-side stream to the secondaries over NTB.
type Cluster struct {
	c *repl.Cluster
}

// NewCluster wires the given devices with a full NTB mesh.
func (s *System) NewCluster(devices ...*Device) (*Cluster, error) {
	raw := make([]*villars.Device, len(devices))
	for i, d := range devices {
		raw[i] = d.dev
	}
	c, err := repl.New(s.env, raw)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Setup elects a primary and replication scheme; the rest become
// secondaries.
func (c *Cluster) Setup(p *Proc, primary int, scheme ReplicationScheme) error {
	return c.c.Setup(p, primary, scheme)
}

// Promote fails over to another member (§7.1).
func (c *Cluster) Promote(p *Proc, newPrimary int) error {
	return c.c.Promote(p, newPrimary)
}

// Lag returns each secondary's shadow-counter lag in bytes.
func (c *Cluster) Lag() []int64 { return c.c.Lag() }

// PrimaryName returns the current primary's device name.
func (c *Cluster) PrimaryName() string {
	if d := c.c.Primary(); d != nil {
		return d.Name()
	}
	return ""
}

// Stats returns the cluster's typed telemetry snapshot.
func (c *Cluster) Stats() ClusterStats { return c.c.Stats() }

// Typed stats snapshots (see the Stats methods on Device, VF, and
// Cluster). These are plain value structs assembled on demand; reading
// them never perturbs the simulation.
type (
	DeviceStats  = villars.DeviceStats
	VFStats      = villars.VFStats
	CMBStats     = villars.CMBStats
	DestageStats = villars.DestageStats
	ClusterStats = repl.ClusterStats
)

// MetricsSnapshot captures every metric registered in this system's
// simulation environment — counters, gauges, and histograms from all
// devices, VFs, bridges, WAL pipelines, and loggers — with names sorted.
// The snapshot is deterministic: the same seed and workload produce a
// byte-identical Encode() across runs (the repository's reproducibility
// contract, see DESIGN.md §7).
func (s *System) MetricsSnapshot() *obs.Snapshot {
	return obs.For(s.env).Snapshot()
}

// Metrics output formats accepted by WriteMetrics.
const (
	// MetricsJSON is the canonical machine-readable encoding (one JSON
	// object, trailing newline); byte-identical across same-seed runs.
	MetricsJSON = "json"
	// MetricsText is a line-oriented human-readable dump.
	MetricsText = "text"
)

// WriteMetrics writes a metrics snapshot of the whole system to w in the
// given format (MetricsJSON or MetricsText).
func (s *System) WriteMetrics(w io.Writer, format string) error {
	snap := s.MetricsSnapshot()
	switch format {
	case MetricsJSON:
		return snap.WriteJSON(w)
	case MetricsText:
		return snap.WriteText(w)
	default:
		return fmt.Errorf("xssd: unknown metrics format %q (want %q or %q)", format, MetricsJSON, MetricsText)
	}
}
