// Package xssd is the public API of this repository: a simulated
// implementation of the X-SSD storage architecture and its Villars
// reference device, from the SIGMOD 2022 paper "X-SSD: A Storage System
// with Native Support for Database Logging and Replication".
//
// An X-SSD couples a conventional NVMe flash SSD with a persistent-memory
// "fast side" reachable through the NVMe Controller Memory Buffer. The
// fast side is an append-only ring with three data-propagation services:
// in-order destaging to flash, mirroring to peer devices over NTB, and a
// credit counter for flow control and durability tracking. Databases use
// it through drop-in replacements for pwrite/fsync/pread.
//
// Everything runs inside a deterministic discrete-event simulation
// (virtual time); see DESIGN.md for the substitution map from the paper's
// hardware to the simulated components.
//
// A minimal session:
//
//	sys := xssd.NewSystem(1)
//	dev := sys.NewDevice(xssd.DeviceOptions{Name: "log0"})
//	sys.Run(func(p *xssd.Proc) {
//	    log := dev.OpenLog(p)
//	    log.Pwrite(p, []byte("commit record"))
//	    log.Fsync(p)
//	})
package xssd

import (
	"time"

	"xssd/internal/core"
	"xssd/internal/nand"
	"xssd/internal/pcie"
	"xssd/internal/pm"
	"xssd/internal/repl"
	"xssd/internal/sched"
	"xssd/internal/sim"
	"xssd/internal/trace"
	"xssd/internal/villars"
	"xssd/internal/xapi"
)

// Proc is a simulated process handle; all blocking API calls take one.
type Proc = sim.Proc

// Backing selects the fast side's persistent-memory class.
type Backing int

// Fast-side backing memories (paper §4.1 / §6).
const (
	// SRAM: small and fastest (FPGA BlockRAM class, 128 KB @ 4 GB/s).
	SRAM Backing = iota
	// DRAM: large, bandwidth shared with the device's data buffer
	// (DDR3 class, 128 MB @ 2 GB/s).
	DRAM
)

// DestagePolicy selects the storage-controller scheduling mode (§4.3).
type DestagePolicy = sched.Policy

// Destage scheduling policies.
const (
	Neutral              = sched.Neutral
	DestagePriority      = sched.DestagePriority
	ConventionalPriority = sched.ConventionalPriority
)

// ReplicationScheme selects how the credit counter combines replica
// progress (§4.2).
type ReplicationScheme = core.ReplicationScheme

// Replication schemes.
const (
	Eager = core.Eager
	Lazy  = core.Lazy
	Chain = core.Chain
)

// System is a simulation universe: a virtual clock plus any number of
// hosts and devices. All devices in one System can be clustered.
type System struct {
	env     *sim.Env
	hostMem *pcie.HostMemory
	devices []*Device
	scratch int64
}

// NewSystem creates an empty system with a deterministic seed.
func NewSystem(seed int64) *System {
	return &System{
		env:     sim.NewEnv(seed),
		hostMem: pcie.NewHostMemory(16 << 20),
	}
}

// Env exposes the underlying simulation environment for advanced use
// (custom processes, time control).
func (s *System) Env() *sim.Env { return s.env }

// Now returns the current virtual time.
func (s *System) Now() time.Duration { return s.env.Now() }

// Go starts fn as a simulated process.
func (s *System) Go(name string, fn func(p *Proc)) { s.env.Go(name, fn) }

// Run starts fn as a process and drives the simulation until fn returns
// (device background processes keep running and do not hold Run open).
func (s *System) Run(fn func(p *Proc)) {
	done := false
	s.env.Go("main", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for !done {
		s.env.RunFor(time.Millisecond)
	}
}

// RunFor drives the simulation for a span of virtual time.
func (s *System) RunFor(d time.Duration) { s.env.RunFor(d) }

// DeviceOptions configure a new Villars device. Zero values select the
// paper's defaults.
type DeviceOptions struct {
	Name    string
	Backing Backing
	// QueueSize is the CMB intake queue (default 32 KB, §6.3's best).
	QueueSize int
	// Policy is the initial destage scheduling policy.
	Policy DestagePolicy
	// Geometry overrides the NAND array shape (default: 8×8 dies of
	// 16 KB pages).
	Geometry *nand.Geometry
	// ShadowUpdatePeriod is the replica counter-report interval
	// (default 0.4 µs).
	ShadowUpdatePeriod time.Duration
}

// Device is one simulated Villars X-SSD attached to the system's host.
type Device struct {
	sys *System
	dev *villars.Device
}

// NewDevice creates and attaches a device.
func (s *System) NewDevice(opts DeviceOptions) *Device {
	cfg := villars.DefaultConfig(opts.Name)
	if opts.Backing == DRAM {
		cfg.Backing = pm.DRAMSpec
	} else {
		cfg.Backing = pm.SRAMSpec
	}
	if opts.QueueSize > 0 {
		cfg.QueueSize = opts.QueueSize
	}
	cfg.Policy = opts.Policy
	if opts.Geometry != nil {
		cfg.Geometry = *opts.Geometry
	} else {
		cfg.Geometry = nand.Geometry{Channels: 8, WaysPerChan: 8, BlocksPerDie: 64, PagesPerBlock: 64, PageSize: 16 << 10}
	}
	if opts.ShadowUpdatePeriod > 0 {
		cfg.ShadowUpdatePeriod = opts.ShadowUpdatePeriod
	}
	d := &Device{sys: s, dev: villars.New(s.env, cfg, s.hostMem)}
	s.devices = append(s.devices, d)
	return d
}

// Raw exposes the underlying device model (stats, fault injection).
func (d *Device) Raw() *villars.Device { return d.dev }

// Name returns the device name.
func (d *Device) Name() string { return d.dev.Name() }

// InjectPowerLoss simulates a sudden power interruption; the device
// drains its fast side on supercapacitor energy (crash protocol, §4.1).
func (d *Device) InjectPowerLoss() { d.dev.InjectPowerLoss() }

// Drained reports whether the post-power-loss drain has finished.
func (d *Device) Drained() bool { return d.dev.Drained() }

// SetReplicationScheme selects the counter combination reported to hosts.
func (d *Device) SetReplicationScheme(s ReplicationScheme) {
	d.dev.Transport().SetScheme(s)
}

// VF is a virtual function: an independent fast side on a shared device
// (paper §7.2). Each VF has its own ring, credit counter, and destage
// range — one device can serve several databases, or give each log-writer
// thread a private flow-control domain (§7.1).
type VF struct {
	sys *System
	vf  *villars.VirtualFunction
}

// NewVF carves a virtual fast side out of the device.
func (d *Device) NewVF(name string, cmbSize int64, queueSize int, destageLBAs int64) (*VF, error) {
	vf, err := d.dev.CreateVF(name, cmbSize, queueSize, destageLBAs)
	if err != nil {
		return nil, err
	}
	return &VF{sys: d.sys, vf: vf}, nil
}

// Name returns the VF's qualified name.
func (v *VF) Name() string { return v.vf.Name() }

// OpenLog maps the VF's fast side for this process.
func (v *VF) OpenLog(p *Proc) *Log {
	v.sys.scratch += 64 << 10
	return &Log{l: xapi.Open(p, v.vf, xapi.Options{
		HostMem: v.sys.hostMem,
		Scratch: v.sys.scratch,
	})}
}

// EnableTracing attaches an event tracer to the device, retaining the
// last capacity events.
func (d *Device) EnableTracing(capacity int) *trace.Tracer {
	return d.dev.EnableTracing(capacity)
}

// Log is the drop-in logging handle (paper §5.1): Pwrite/Fsync/Pread plus
// the §5.2 Alloc/Free advanced API. One Log models one mapped writer
// context (a core); open one per simulated worker.
type Log struct {
	l *xapi.Logger
}

// OpenLog maps the device's fast side for this process.
func (d *Device) OpenLog(p *Proc) *Log {
	d.sys.scratch += 64 << 10
	return &Log{l: xapi.Open(p, d.dev, xapi.Options{
		HostMem: d.sys.hostMem,
		Scratch: d.sys.scratch,
	})}
}

// Pwrite appends buf to the log (x_pwrite): the copy is paced by the
// device's credit counter and returns once the data is on the wire.
// The returned offset is the byte position in the log stream.
func (g *Log) Pwrite(p *Proc, buf []byte) int64 { return g.l.XPwrite(p, buf) }

// Fsync blocks until everything written through this handle is durable
// under the device's replication scheme (x_fsync).
func (g *Log) Fsync(p *Proc) error { return g.l.XFsync(p) }

// Pread fills buf with the next adjacent bytes of the destaged log tail
// (x_pread's tail-read semantics), blocking until enough data reaches the
// conventional side. Returns the stream offset of buf[0].
func (g *Log) Pread(p *Proc, buf []byte) (int64, error) { return g.l.XPread(p, buf) }

// Alloc reserves a fast-side area for random-order writes (x_alloc).
func (g *Log) Alloc(p *Proc, size int) (int64, error) { return g.l.XAlloc(p, size) }

// WriteAt stores into an allocated area at the given stream offset.
func (g *Log) WriteAt(p *Proc, off int64, data []byte) { g.l.XWriteAt(p, off, data) }

// Free releases an allocated area, making it destage-eligible (x_free).
func (g *Log) Free(p *Proc, start int64) error { return g.l.XFree(p, start) }

// Written returns total bytes issued through this handle.
func (g *Log) Written() int64 { return g.l.Written() }

// Cluster is a replication group of devices (§4.2): one primary mirrors
// its fast-side stream to the secondaries over NTB.
type Cluster struct {
	c *repl.Cluster
}

// NewCluster wires the given devices with a full NTB mesh.
func (s *System) NewCluster(devices ...*Device) (*Cluster, error) {
	raw := make([]*villars.Device, len(devices))
	for i, d := range devices {
		raw[i] = d.dev
	}
	c, err := repl.New(s.env, raw)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Setup elects a primary and replication scheme; the rest become
// secondaries.
func (c *Cluster) Setup(p *Proc, primary int, scheme ReplicationScheme) error {
	return c.c.Setup(p, primary, scheme)
}

// Promote fails over to another member (§7.1).
func (c *Cluster) Promote(p *Proc, newPrimary int) error {
	return c.c.Promote(p, newPrimary)
}

// Lag returns each secondary's shadow-counter lag in bytes.
func (c *Cluster) Lag() []int64 { return c.c.Lag() }

// PrimaryName returns the current primary's device name.
func (c *Cluster) PrimaryName() string {
	if d := c.c.Primary(); d != nil {
		return d.Name()
	}
	return ""
}
