module xssd

go 1.22
